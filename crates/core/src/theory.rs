//! Theoretical analysis (paper §5): the Theorem 1 convergence bound, the
//! Remark 1 mobility derivative, and a strongly-convex quadratic
//! test-bed that validates both numerically (and drives the Figure 3
//! parameter-space illustration).

use serde::{Deserialize, Serialize};

/// Constants of the Theorem 1 bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundParams {
    /// Smoothness constant `β` (Assumption 1).
    pub beta: f32,
    /// Strong-convexity constant `μ` (Assumption 2).
    pub mu: f32,
    /// Aggregate gradient-variance term `B = Σ h_m² σ_m² + 6βΓ` (Eq. 18).
    pub b: f32,
    /// Uniform stochastic-gradient bound `G²` (Assumption 4).
    pub g2: f32,
    /// Local steps per round `I`.
    pub local_steps: usize,
    /// Fixed on-device aggregation coefficient `α ∈ (0, 1)`.
    pub alpha: f32,
    /// Global mobility probability `P ∈ (0, 1]`.
    pub p: f32,
    /// Initial distance `E‖w¹ − w*‖²`.
    pub initial_gap: f32,
}

impl BoundParams {
    /// `γ = max(8β/μ, I)` (Theorem 1).
    pub fn gamma(&self) -> f32 {
        (8.0 * self.beta / self.mu).max(self.local_steps as f32)
    }

    /// The Theorem 1 learning-rate schedule `η_t = 2 / (μ(γ + t))`.
    pub fn learning_rate(&self, t: usize) -> f32 {
        2.0 / (self.mu * (self.gamma() + t as f32))
    }

    /// Validates the assumptions' ranges.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.beta.is_nan() || self.beta <= 0.0 {
            return Err("β must be positive".into());
        }
        if self.mu.is_nan() || self.mu <= 0.0 || self.mu > self.beta {
            return Err("need 0 < μ ≤ β".into());
        }
        if self.alpha.is_nan() || self.alpha <= 0.0 || self.alpha >= 1.0 {
            return Err("α must lie in (0, 1)".into());
        }
        if self.p.is_nan() || self.p <= 0.0 || self.p > 1.0 {
            return Err("P must lie in (0, 1]".into());
        }
        if self.local_steps == 0 {
            return Err("I must be positive".into());
        }
        if self.b < 0.0 || self.g2 < 0.0 || self.initial_gap < 0.0 {
            return Err("B, G², and the initial gap must be non-negative".into());
        }
        Ok(())
    }

    /// The Theorem 1 upper bound on `E[F(w^{T+1})] − F(w*)` after `t`
    /// steps (Eq. 17):
    ///
    /// `β/(γ+T+1) · (2B/μ² + (γ+1)/2 · E‖w¹−w*‖²) + 8βI²G²/(μ²γ²α(1−α)P)`.
    pub fn bound(&self, t: usize) -> f32 {
        let gamma = self.gamma();
        let decaying = self.beta / (gamma + t as f32 + 1.0)
            * (2.0 * self.b / (self.mu * self.mu) + (gamma + 1.0) / 2.0 * self.initial_gap);
        decaying + self.mobility_term()
    }

    /// The residual mobility term `8βI²G²/(μ²γ²α(1−α)P)` — the part of
    /// the bound that device mobility shrinks.
    pub fn mobility_term(&self) -> f32 {
        let gamma = self.gamma();
        let i2 = (self.local_steps * self.local_steps) as f32;
        8.0 * self.beta * i2 * self.g2
            / (self.mu * self.mu * gamma * gamma * self.alpha * (1.0 - self.alpha) * self.p)
    }

    /// Remark 1: `∂(bound)/∂P = −8βI²G²/(μ²γ²α(1−α)P²)`, negative for
    /// all admissible parameters — more mobility always tightens the
    /// bound.
    pub fn mobility_derivative(&self) -> f32 {
        -self.mobility_term() / self.p
    }
}

/// A distributed strongly-convex quadratic problem:
/// `F_m(w) = ½ a_m ‖w − c_m‖²` per device, so `F` satisfies Assumptions
/// 1–2 with `β = max a_m`, `μ = min a_m`, and the global optimum is the
/// weighted mean of the `c_m`. Used to validate Theorem 1 and to draw the
/// Figure 3 parameter-space picture.
#[derive(Debug, Clone)]
pub struct QuadraticProblem {
    /// Per-device curvature `a_m > 0`.
    pub curvatures: Vec<f32>,
    /// Per-device optimum `c_m` (all the same dimension).
    pub centers: Vec<Vec<f32>>,
    /// Per-device weight `h_m` (sums to 1).
    pub weights: Vec<f32>,
}

impl QuadraticProblem {
    /// Creates a problem; weights are normalised internally.
    ///
    /// # Panics
    /// Panics on empty input, dimension mismatches or non-positive
    /// curvatures/weights.
    pub fn new(curvatures: Vec<f32>, centers: Vec<Vec<f32>>, weights: Vec<f32>) -> Self {
        assert!(!curvatures.is_empty(), "need at least one device");
        assert_eq!(curvatures.len(), centers.len(), "curvatures/centers");
        assert_eq!(curvatures.len(), weights.len(), "curvatures/weights");
        assert!(
            curvatures.iter().all(|&a| a > 0.0),
            "curvatures must be positive"
        );
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let dim = centers[0].len();
        assert!(centers.iter().all(|c| c.len() == dim), "center dims differ");
        let total: f32 = weights.iter().sum();
        let weights = weights.into_iter().map(|w| w / total).collect();
        QuadraticProblem {
            curvatures,
            centers,
            weights,
        }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.centers[0].len()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.curvatures.len()
    }

    /// Smoothness `β = max a_m`.
    pub fn beta(&self) -> f32 {
        self.curvatures.iter().copied().fold(0.0, f32::max)
    }

    /// Strong convexity `μ = min a_m`.
    pub fn mu(&self) -> f32 {
        self.curvatures
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Device `m`'s loss at `w`.
    pub fn device_loss(&self, m: usize, w: &[f32]) -> f32 {
        let d2: f32 = w
            .iter()
            .zip(&self.centers[m])
            .map(|(x, c)| (x - c) * (x - c))
            .sum();
        0.5 * self.curvatures[m] * d2
    }

    /// Device `m`'s gradient at `w`, written into `out`.
    pub fn device_grad(&self, m: usize, w: &[f32], out: &mut [f32]) {
        for ((g, x), c) in out.iter_mut().zip(w).zip(&self.centers[m]) {
            *g = self.curvatures[m] * (x - c);
        }
    }

    /// Global loss `F(w) = Σ h_m F_m(w)`.
    pub fn global_loss(&self, w: &[f32]) -> f32 {
        (0..self.devices())
            .map(|m| self.weights[m] * self.device_loss(m, w))
            .sum()
    }

    /// Closed-form global optimum `w* = Σ h_m a_m c_m / Σ h_m a_m`.
    pub fn optimum(&self) -> Vec<f32> {
        let mut num = vec![0.0f32; self.dim()];
        let mut den = 0.0f32;
        for m in 0..self.devices() {
            let k = self.weights[m] * self.curvatures[m];
            den += k;
            for (n, c) in num.iter_mut().zip(&self.centers[m]) {
                *n += k * c;
            }
        }
        for n in &mut num {
            *n /= den;
        }
        num
    }

    /// Optimality gap `F(w) − F(w*)`.
    pub fn gap(&self, w: &[f32]) -> f32 {
        (self.global_loss(w) - self.global_loss(&self.optimum())).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BoundParams {
        BoundParams {
            beta: 4.0,
            mu: 1.0,
            b: 2.0,
            g2: 9.0,
            local_steps: 10,
            alpha: 0.5,
            p: 0.5,
            initial_gap: 1.0,
        }
    }

    #[test]
    fn gamma_and_lr_schedule() {
        let p = params();
        assert_eq!(p.gamma(), 32.0); // 8β/μ = 32 > I = 10
        assert!((p.learning_rate(0) - 2.0 / 32.0).abs() < 1e-6);
        assert!(p.learning_rate(100) < p.learning_rate(0));
    }

    #[test]
    fn bound_decreases_in_time() {
        let p = params();
        assert!(p.bound(10) > p.bound(100));
        assert!(p.bound(100) > p.bound(10_000));
        // Converges to the mobility term.
        assert!((p.bound(10_000_000) - p.mobility_term()).abs() < 1e-3);
    }

    #[test]
    fn bound_decreases_in_mobility_remark1() {
        let mut lo = params();
        lo.p = 0.1;
        let mut hi = params();
        hi.p = 0.9;
        assert!(
            lo.bound(100) > hi.bound(100),
            "higher P must tighten the bound"
        );
        assert!(lo.mobility_derivative() < 0.0);
        assert!(hi.mobility_derivative() < 0.0);
        // Derivative magnitude shrinks with P (∝ 1/P²).
        assert!(lo.mobility_derivative().abs() > hi.mobility_derivative().abs());
    }

    #[test]
    fn mobility_term_symmetric_in_alpha() {
        let mut a = params();
        a.alpha = 0.3;
        let mut b = params();
        b.alpha = 0.7;
        assert!((a.mobility_term() - b.mobility_term()).abs() < 1e-3);
        // α = 0.5 minimises the term (α(1−α) maximal).
        let mut mid = params();
        mid.alpha = 0.5;
        assert!(mid.mobility_term() <= a.mobility_term());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut p = params();
        p.alpha = 1.0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.p = 0.0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.mu = 10.0; // μ > β
        assert!(p.validate().is_err());
        assert!(params().validate().is_ok());
    }

    #[test]
    fn quadratic_optimum_is_weighted_center() {
        let q = QuadraticProblem::new(
            vec![1.0, 1.0],
            vec![vec![0.0, 0.0], vec![2.0, 4.0]],
            vec![1.0, 1.0],
        );
        assert_eq!(q.optimum(), vec![1.0, 2.0]);
        assert!(q.gap(&q.optimum()) < 1e-9);
        assert!(q.gap(&[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn quadratic_optimum_respects_curvature() {
        // Stiffer device pulls the optimum toward its center.
        let q = QuadraticProblem::new(vec![3.0, 1.0], vec![vec![0.0], vec![4.0]], vec![1.0, 1.0]);
        let w = q.optimum();
        assert!(w[0] < 2.0, "{w:?}");
        assert!((w[0] - 1.0).abs() < 1e-6); // (3·0 + 1·4)/4
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let q = QuadraticProblem::new(vec![2.0], vec![vec![1.0, -1.0]], vec![1.0]);
        let w = [0.5f32, 0.5];
        let mut g = [0.0f32; 2];
        q.device_grad(0, &w, &mut g);
        let eps = 1e-3;
        for i in 0..2 {
            let mut wp = w;
            wp[i] += eps;
            let mut wm = w;
            wm[i] -= eps;
            let fd = (q.device_loss(0, &wp) - q.device_loss(0, &wm)) / (2.0 * eps);
            assert!((fd - g[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn beta_mu_are_extreme_curvatures() {
        let q = QuadraticProblem::new(vec![0.5, 2.0, 1.0], vec![vec![0.0]; 3], vec![1.0; 3]);
        assert_eq!(q.beta(), 2.0);
        assert_eq!(q.mu(), 0.5);
    }
}
