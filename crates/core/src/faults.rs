//! The fault-injection plane: deterministic, seeded failure models for
//! the device-edge-cloud loop.
//!
//! The paper's Algorithm 1 assumes every selected device trains and
//! uploads every step; real fleets lose devices mid-round (FedFly is
//! built around devices migrating or vanishing during training, and the
//! vehicular HFL analyses show convergence is governed by which updates
//! *arrive*, not which were scheduled). This module replaces the blunt
//! `SimConfig::availability` scalar with first-class failure processes:
//!
//! * **Dropout** ([`DropoutModel`]) — per-device reachability as an
//!   i.i.d. coin or a sticky two-state (Gilbert–Elliott) Markov chain
//!   producing bursty outages;
//! * **Stragglers** ([`DelayModel`] + [`FaultConfig::deadline_s`]) — a
//!   per-upload delay draw compared against a per-step deadline; late
//!   devices are excluded from this step's edge aggregation and their
//!   update is applied next step as a *stale* similarity-weighted blend
//!   (Eq. 9 reused for stale merges);
//! * **Upload loss** ([`FaultConfig::upload_loss`]) — each wireless
//!   upload attempt is lost (or received corrupted and discarded, which
//!   is the same thing once integrity-checked) with this probability,
//!   and retried with exponential backoff up to
//!   [`FaultConfig::upload_retries`] times, every attempt charged to
//!   [`crate::CommStats`];
//! * **WAN outages** ([`FaultConfig::wan_outage`]) — at each cloud
//!   sync, every edge's edge↔cloud link is independently down with this
//!   probability; down edges neither upload nor receive the broadcast
//!   (their sample window keeps accumulating and folds into the next
//!   successful sync), and devices parked under a down edge miss the
//!   device-level broadcast.
//!
//! All processes draw from one dedicated RNG stream
//! (`derive_seed(seed, 9)`) owned by [`FaultPlane`], never from the
//! selection or availability streams — so a config with every fault
//! disabled is *bitwise identical* to a simulation without the plane,
//! and `step` / `step_reference` stay interchangeable under faults
//! (both consume the fault stream in the same order). The disabled
//! plane performs no RNG draw, no allocation and no timer call; the
//! hot-path contract of DESIGN.md §6 is untouched.

use middle_tensor::random::{derive_seed, rng};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-device reachability process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DropoutModel {
    /// Every device is always reachable.
    None,
    /// Each device is independently down each step with probability `p`
    /// (memoryless churn).
    Iid {
        /// Per-step down probability.
        p: f64,
    },
    /// Sticky Gilbert–Elliott chain: an up device goes down with
    /// probability `p_fail`, a down device recovers with probability
    /// `p_recover`. Small `p_recover` produces the bursty multi-step
    /// outages i.i.d. dropout cannot express.
    Markov {
        /// Up → down transition probability per step.
        p_fail: f64,
        /// Down → up transition probability per step.
        p_recover: f64,
    },
}

/// Straggler delay distribution for one upload, in seconds. Sampled
/// once per selected device per step; compared against
/// [`FaultConfig::deadline_s`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// No delay: every upload meets any positive deadline.
    None,
    /// Uniform on `[min_s, max_s]`.
    Uniform {
        /// Minimum delay.
        min_s: f64,
        /// Maximum delay.
        max_s: f64,
    },
    /// Exponential with the given mean (inverse-CDF sampled).
    Exponential {
        /// Mean delay.
        mean_s: f64,
    },
    /// Heavy-tailed Pareto: `scale_s · (1−u)^(−1/shape)`; small `shape`
    /// gives the long tail that makes deadline exclusion interesting.
    Pareto {
        /// Scale (minimum) delay.
        scale_s: f64,
        /// Tail index; delays are finite-mean for `shape > 1`.
        shape: f64,
    },
}

/// Deterministic failure-model configuration, carried on
/// [`crate::SimConfig::faults`]. The default disables every model; the
/// simulation is then bitwise identical to one without a fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-device reachability process.
    #[serde(default = "default_dropout")]
    pub dropout: DropoutModel,
    /// Straggler delay distribution per upload.
    #[serde(default = "default_delay")]
    pub straggler_delay: DelayModel,
    /// Per-step upload deadline in seconds. An upload whose sampled
    /// delay exceeds the deadline misses the step and is merged stale
    /// next step. Only consulted when `straggler_delay` is active.
    #[serde(default = "default_deadline")]
    pub deadline_s: f64,
    /// Probability that one upload attempt is lost (or corrupted and
    /// discarded) on the device→edge wireless link.
    #[serde(default)]
    pub upload_loss: f64,
    /// Bounded retries after a lost upload attempt (exponential
    /// backoff: retry `k` waits `2^(k−1)` backoff slots first). `0`
    /// means a lost first attempt is final.
    #[serde(default = "default_retries")]
    pub upload_retries: u32,
    /// Probability that an edge's WAN link is down at a cloud sync.
    #[serde(default)]
    pub wan_outage: f64,
}

fn default_dropout() -> DropoutModel {
    DropoutModel::None
}

fn default_delay() -> DelayModel {
    DelayModel::None
}

fn default_deadline() -> f64 {
    1.0
}

fn default_retries() -> u32 {
    2
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            dropout: DropoutModel::None,
            straggler_delay: DelayModel::None,
            deadline_s: default_deadline(),
            upload_loss: 0.0,
            upload_retries: default_retries(),
            wan_outage: 0.0,
        }
    }
}

impl FaultConfig {
    /// Whether any failure model is active. When `false`, the plane
    /// draws no randomness and the simulation is bitwise identical to
    /// a fault-free run.
    pub fn any_enabled(&self) -> bool {
        self.dropout_active()
            || self.straggler_active()
            || self.upload_loss_active()
            || self.wan_active()
    }

    /// Whether the dropout process is active.
    pub fn dropout_active(&self) -> bool {
        !matches!(self.dropout, DropoutModel::None)
    }

    /// Whether the straggler delay/deadline process is active.
    pub fn straggler_active(&self) -> bool {
        !matches!(self.straggler_delay, DelayModel::None)
    }

    /// Whether upload loss (and therefore retry) is active.
    pub fn upload_loss_active(&self) -> bool {
        self.upload_loss > 0.0
    }

    /// Whether WAN outages are active.
    pub fn wan_active(&self) -> bool {
        self.wan_outage > 0.0
    }

    /// Validates the configuration; mirrored by
    /// [`crate::SimConfig::validate`].
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self.dropout {
            DropoutModel::None => {}
            DropoutModel::Iid { p } => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("dropout p = {p} outside [0, 1]"));
                }
            }
            DropoutModel::Markov { p_fail, p_recover } => {
                if !(0.0..=1.0).contains(&p_fail) {
                    return Err(format!("dropout p_fail = {p_fail} outside [0, 1]"));
                }
                if !(0.0..=1.0).contains(&p_recover) {
                    return Err(format!("dropout p_recover = {p_recover} outside [0, 1]"));
                }
            }
        }
        match self.straggler_delay {
            DelayModel::None => {}
            DelayModel::Uniform { min_s, max_s } => {
                if !(min_s.is_finite() && max_s.is_finite() && 0.0 <= min_s && min_s <= max_s) {
                    return Err(format!("uniform delay [{min_s}, {max_s}] invalid"));
                }
            }
            DelayModel::Exponential { mean_s } => {
                if !(mean_s.is_finite() && mean_s > 0.0) {
                    return Err(format!("exponential delay mean {mean_s} must be positive"));
                }
            }
            DelayModel::Pareto { scale_s, shape } => {
                if !(scale_s.is_finite() && scale_s > 0.0) {
                    return Err(format!("pareto scale {scale_s} must be positive"));
                }
                if !(shape.is_finite() && shape > 0.0) {
                    return Err(format!("pareto shape {shape} must be positive"));
                }
            }
        }
        if self.straggler_active() && !(self.deadline_s.is_finite() && self.deadline_s > 0.0) {
            return Err(format!("deadline_s = {} must be positive", self.deadline_s));
        }
        if !(0.0..=1.0).contains(&self.upload_loss) {
            return Err(format!("upload_loss = {} outside [0, 1]", self.upload_loss));
        }
        if self.upload_retries > 16 {
            return Err(format!(
                "upload_retries = {} exceeds the backoff bound of 16",
                self.upload_retries
            ));
        }
        if !(0.0..=1.0).contains(&self.wan_outage) {
            return Err(format!("wan_outage = {} outside [0, 1]", self.wan_outage));
        }
        Ok(())
    }
}

/// Outcome of one device's upload (first attempt plus bounded retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadOutcome {
    /// Wireless transmission attempts performed (≥ 1).
    pub attempts: u32,
    /// Whether any attempt was received intact.
    pub delivered: bool,
    /// Exponential-backoff slots waited before retries
    /// (retry `k` waits `2^(k−1)` slots).
    pub backoff_slots: u64,
}

/// A deadline-missed update awaiting its stale merge at the next step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingStale {
    /// Edge the late upload was addressed to.
    pub edge: usize,
    /// Device that produced the update.
    pub device: usize,
    /// Snapshot of the trained parameters at upload time (the device
    /// may retrain before the merge lands). When the compression plane
    /// is lossy-active this is the *reconstructed* model the edge
    /// decodes, compressed once at upload time.
    pub flat: Vec<f32>,
    /// Cached squared L2 norm of `flat`.
    pub norm_sq: f32,
    /// Wire bytes the late delivery occupies (compressed size under a
    /// lossy-active compression plane, dense otherwise). Charged to
    /// [`crate::CommStats::device_to_edge_bytes`] when the merge lands.
    #[serde(default)]
    pub payload_bytes: u64,
}

/// Runtime state of the fault plane for one simulation: the failure
/// config, a dedicated RNG stream, the per-device dropout chain state
/// and the queue of pending stale updates.
///
/// The plane is deliberately *outside* the telemetry/comm planes: it
/// decides what fails; the simulation loop owns how failures are
/// recovered and accounted.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    enabled: bool,
    rng: StdRng,
    device_down: Vec<bool>,
    pending: Vec<PendingStale>,
}

impl FaultPlane {
    /// Builds the plane for `num_devices` devices from the simulation
    /// master seed (stream 9 — disjoint from every other stream the
    /// simulation derives).
    pub fn new(cfg: FaultConfig, num_devices: usize, seed: u64) -> Self {
        let enabled = cfg.any_enabled();
        FaultPlane {
            cfg,
            enabled,
            rng: rng(derive_seed(seed, 9)),
            device_down: vec![false; num_devices],
            pending: Vec::new(),
        }
    }

    /// A permanently-disabled plane (used by `Default`-free callers).
    pub fn disabled(num_devices: usize) -> Self {
        FaultPlane::new(FaultConfig::default(), num_devices, 0)
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any failure model is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the dropout process is active.
    pub fn dropout_active(&self) -> bool {
        self.cfg.dropout_active()
    }

    /// Whether the straggler process is active.
    pub fn straggler_active(&self) -> bool {
        self.cfg.straggler_active()
    }

    /// Whether WAN outages are active.
    pub fn wan_active(&self) -> bool {
        self.cfg.wan_active()
    }

    /// Advances every device's reachability process by one step. Draws
    /// exactly one uniform per device when dropout is active (i.i.d.
    /// and Markov alike), zero otherwise — the draw count never depends
    /// on the chain state, so `step` and `step_reference` stay in
    /// lockstep on the fault stream.
    pub fn advance_dropout(&mut self) {
        match self.cfg.dropout {
            DropoutModel::None => {}
            DropoutModel::Iid { p } => {
                for d in &mut self.device_down {
                    *d = self.rng.gen::<f64>() < p;
                }
            }
            DropoutModel::Markov { p_fail, p_recover } => {
                for d in &mut self.device_down {
                    let u = self.rng.gen::<f64>();
                    *d = if *d { u >= p_recover } else { u < p_fail };
                }
            }
        }
    }

    /// Whether device `m` is unreachable this step.
    pub fn is_down(&self, m: usize) -> bool {
        self.device_down[m]
    }

    /// Samples one upload delay from the straggler model. Draws exactly
    /// one uniform when the straggler model is active, zero otherwise
    /// (returning 0.0). Lockstep compares the sample against the
    /// deadline ([`Self::misses_deadline`]); the event-driven timeline
    /// uses it directly as the upload's in-flight latency — both consume
    /// the fault stream identically.
    pub fn sample_upload_delay(&mut self) -> f64 {
        match self.cfg.straggler_delay {
            DelayModel::None => 0.0,
            DelayModel::Uniform { min_s, max_s } => self.rng.gen_range(min_s..=max_s),
            DelayModel::Exponential { mean_s } => {
                let u: f64 = self.rng.gen();
                -mean_s * (1.0 - u).ln()
            }
            DelayModel::Pareto { scale_s, shape } => {
                let u: f64 = self.rng.gen();
                scale_s * (1.0 - u).powf(-1.0 / shape)
            }
        }
    }

    /// Samples one upload delay and compares it against the deadline.
    /// Draws exactly one uniform when the straggler model is active,
    /// zero otherwise.
    pub fn misses_deadline(&mut self) -> bool {
        if matches!(self.cfg.straggler_delay, DelayModel::None) {
            return false;
        }
        self.sample_upload_delay() > self.cfg.deadline_s
    }

    /// Runs one device's upload through the loss/retry process: the
    /// first attempt plus up to `upload_retries` retries, each preceded
    /// by exponentially growing backoff. Draws one uniform per attempt
    /// when upload loss is active; zero draws (instant success)
    /// otherwise.
    pub fn upload_attempts(&mut self) -> UploadOutcome {
        if !self.cfg.upload_loss_active() {
            return UploadOutcome {
                attempts: 1,
                delivered: true,
                backoff_slots: 0,
            };
        }
        let mut attempts = 0u32;
        let mut backoff_slots = 0u64;
        loop {
            attempts += 1;
            if self.rng.gen::<f64>() >= self.cfg.upload_loss {
                return UploadOutcome {
                    attempts,
                    delivered: true,
                    backoff_slots,
                };
            }
            if attempts > self.cfg.upload_retries {
                return UploadOutcome {
                    attempts,
                    delivered: false,
                    backoff_slots,
                };
            }
            // Retry k (1-based) waits 2^(k-1) slots before resending.
            backoff_slots += 1u64 << (attempts - 1);
        }
    }

    /// Draws one edge's WAN link state for the current sync. One
    /// uniform when WAN outages are active, zero otherwise.
    pub fn wan_is_up(&mut self) -> bool {
        if !self.cfg.wan_active() {
            return true;
        }
        self.rng.gen::<f64>() >= self.cfg.wan_outage
    }

    /// Queues a deadline-missed update for its stale merge next step.
    /// `payload_bytes` is the wire size of the late delivery.
    pub fn push_stale(
        &mut self,
        edge: usize,
        device: usize,
        flat: Vec<f32>,
        norm_sq: f32,
        payload_bytes: u64,
    ) {
        self.pending.push(PendingStale {
            edge,
            device,
            flat,
            norm_sq,
            payload_bytes,
        });
    }

    /// Drains the stale updates queued during the previous step.
    pub fn take_pending(&mut self) -> Vec<PendingStale> {
        std::mem::take(&mut self.pending)
    }

    /// Stale updates currently awaiting their merge.
    pub fn pending(&self) -> &[PendingStale] {
        &self.pending
    }

    /// The dedicated fault RNG stream, for checkpoint capture.
    pub fn rng_ref(&self) -> &StdRng {
        &self.rng
    }

    /// Per-device dropout chain state, for checkpoint capture.
    pub fn device_down_states(&self) -> &[bool] {
        &self.device_down
    }

    /// Overwrites the plane's mutable state (RNG stream, dropout chain
    /// state and pending stale queue) from a checkpoint. The config —
    /// and hence `enabled` — is construction-time state and stays.
    pub fn restore_state(
        &mut self,
        rng: StdRng,
        device_down: Vec<bool>,
        pending: Vec<PendingStale>,
    ) {
        assert_eq!(
            device_down.len(),
            self.device_down.len(),
            "fault-plane device count mismatch"
        );
        self.rng = rng;
        self.device_down = device_down;
        self.pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_disables_everything() {
        let cfg = FaultConfig::default();
        assert!(!cfg.any_enabled());
        assert!(cfg.validate().is_ok());
        let mut plane = FaultPlane::new(cfg, 8, 7);
        assert!(!plane.enabled());
        // The disabled plane never draws: identical planes stay
        // identical through arbitrary call sequences.
        plane.advance_dropout();
        assert!(!plane.misses_deadline());
        assert_eq!(
            plane.upload_attempts(),
            UploadOutcome {
                attempts: 1,
                delivered: true,
                backoff_slots: 0
            }
        );
        assert!(plane.wan_is_up());
        assert!((0..8).all(|m| !plane.is_down(m)));
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut cfg = FaultConfig {
            upload_loss: 1.5,
            ..FaultConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.upload_loss = 0.0;
        cfg.wan_outage = -0.1;
        assert!(cfg.validate().is_err());
        cfg.wan_outage = 0.0;
        cfg.dropout = DropoutModel::Markov {
            p_fail: 0.5,
            p_recover: 2.0,
        };
        assert!(cfg.validate().is_err());
        cfg.dropout = DropoutModel::None;
        cfg.straggler_delay = DelayModel::Uniform {
            min_s: 2.0,
            max_s: 1.0,
        };
        assert!(cfg.validate().is_err());
        cfg.straggler_delay = DelayModel::Exponential { mean_s: 0.5 };
        cfg.deadline_s = 0.0;
        assert!(cfg.validate().is_err());
        cfg.deadline_s = 1.0;
        assert!(cfg.validate().is_ok());
        cfg.upload_retries = 64;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn iid_dropout_tracks_probability() {
        let cfg = FaultConfig {
            dropout: DropoutModel::Iid { p: 0.3 },
            ..FaultConfig::default()
        };
        let mut plane = FaultPlane::new(cfg, 100, 11);
        let mut down = 0u32;
        for _ in 0..200 {
            plane.advance_dropout();
            down += (0..100).filter(|&m| plane.is_down(m)).count() as u32;
        }
        let rate = down as f64 / 20_000.0;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn markov_dropout_is_sticky() {
        // Same marginal down-rate (~0.5) but wildly different burst
        // lengths: the Markov chain with slow recovery must produce
        // longer down runs than i.i.d. at the same rate.
        let run_lengths = |cfg: FaultConfig| {
            let mut plane = FaultPlane::new(cfg, 1, 13);
            let mut runs = Vec::new();
            let mut current = 0u32;
            for _ in 0..4000 {
                plane.advance_dropout();
                if plane.is_down(0) {
                    current += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
            let total: u32 = runs.iter().sum();
            total as f64 / runs.len().max(1) as f64
        };
        let sticky = run_lengths(FaultConfig {
            dropout: DropoutModel::Markov {
                p_fail: 0.1,
                p_recover: 0.1,
            },
            ..FaultConfig::default()
        });
        let iid = run_lengths(FaultConfig {
            dropout: DropoutModel::Iid { p: 0.5 },
            ..FaultConfig::default()
        });
        assert!(
            sticky > 2.0 * iid,
            "sticky mean run {sticky} vs iid {iid}: bursts not sticky"
        );
    }

    #[test]
    fn deadline_splits_uniform_delays() {
        let cfg = FaultConfig {
            straggler_delay: DelayModel::Uniform {
                min_s: 0.0,
                max_s: 2.0,
            },
            deadline_s: 1.0,
            ..FaultConfig::default()
        };
        let mut plane = FaultPlane::new(cfg, 1, 17);
        let misses = (0..10_000).filter(|_| plane.misses_deadline()).count();
        assert!((4500..5500).contains(&misses), "misses {misses}");
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let miss_rate = |delay: DelayModel| {
            let cfg = FaultConfig {
                straggler_delay: delay,
                deadline_s: 5.0,
                ..FaultConfig::default()
            };
            let mut plane = FaultPlane::new(cfg, 1, 19);
            (0..20_000).filter(|_| plane.misses_deadline()).count() as f64 / 20_000.0
        };
        let exp = miss_rate(DelayModel::Exponential { mean_s: 1.0 });
        let pareto = miss_rate(DelayModel::Pareto {
            scale_s: 1.0,
            shape: 1.1,
        });
        assert!(
            pareto > 3.0 * exp.max(1e-4),
            "pareto {pareto} vs exponential {exp}"
        );
    }

    #[test]
    fn upload_retries_are_bounded_with_exponential_backoff() {
        let cfg = FaultConfig {
            upload_loss: 1.0,
            upload_retries: 3,
            ..FaultConfig::default()
        };
        let mut plane = FaultPlane::new(cfg, 1, 23);
        let o = plane.upload_attempts();
        assert_eq!(o.attempts, 4, "1 try + 3 retries");
        assert!(!o.delivered);
        // Backoff before retries 1..=3: 1 + 2 + 4 slots.
        assert_eq!(o.backoff_slots, 7);

        let cfg = FaultConfig {
            upload_loss: 0.5,
            upload_retries: 8,
            ..FaultConfig::default()
        };
        let mut plane = FaultPlane::new(cfg, 1, 29);
        let mut total_attempts = 0u64;
        let mut delivered = 0u64;
        for _ in 0..2000 {
            let o = plane.upload_attempts();
            assert!(o.attempts <= 9);
            total_attempts += o.attempts as u64;
            delivered += u64::from(o.delivered);
        }
        // Mean attempts for p=0.5 ≈ 2; essentially everything delivers
        // within 9 attempts.
        assert!((3500..4500).contains(&total_attempts), "{total_attempts}");
        assert!(delivered > 1950, "{delivered}");
    }

    #[test]
    fn wan_outage_tracks_probability() {
        let cfg = FaultConfig {
            wan_outage: 0.25,
            ..FaultConfig::default()
        };
        let mut plane = FaultPlane::new(cfg, 1, 31);
        let down = (0..10_000).filter(|_| !plane.wan_is_up()).count();
        assert!((2000..3000).contains(&down), "down {down}");
    }

    #[test]
    fn stale_queue_drains_in_fifo_order() {
        let mut plane = FaultPlane::disabled(4);
        plane.push_stale(1, 2, vec![1.0], 1.0, 4);
        plane.push_stale(0, 3, vec![2.0], 4.0, 4);
        assert_eq!(plane.pending().len(), 2);
        let drained = plane.take_pending();
        assert_eq!(drained.len(), 2);
        assert_eq!((drained[0].edge, drained[0].device), (1, 2));
        assert_eq!((drained[1].edge, drained[1].device), (0, 3));
        assert!(plane.pending().is_empty());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let cfg = FaultConfig {
            dropout: DropoutModel::Iid { p: 0.4 },
            upload_loss: 0.3,
            ..FaultConfig::default()
        };
        let mut a = FaultPlane::new(cfg, 16, 99);
        let mut b = FaultPlane::new(cfg, 16, 99);
        for _ in 0..50 {
            a.advance_dropout();
            b.advance_dropout();
            assert!((0..16).all(|m| a.is_down(m) == b.is_down(m)));
            assert_eq!(a.upload_attempts(), b.upload_attempts());
        }
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = FaultConfig {
            dropout: DropoutModel::Markov {
                p_fail: 0.2,
                p_recover: 0.4,
            },
            straggler_delay: DelayModel::Pareto {
                scale_s: 0.5,
                shape: 1.5,
            },
            deadline_s: 2.0,
            upload_loss: 0.1,
            upload_retries: 5,
            wan_outage: 0.05,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
