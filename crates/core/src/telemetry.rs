//! The telemetry plane: per-phase step tracing, latency histograms and
//! simulation counters.
//!
//! The ROADMAP's north star is a production-scale system, and a
//! production loop must be observable: where does a step spend its
//! time, how are selection/training/aggregation latencies distributed,
//! and do the zero-copy hot paths (DESIGN.md §6) stay fast? This module
//! instruments [`crate::Simulation`] with:
//!
//! * monotonic per-phase timers ([`Phase`]) accumulated into a
//!   [`StepProbe`] during each step;
//! * fixed-bucket log2 [`LatencyHistogram`]s (one per phase plus one for
//!   the whole step) with p50/p95/p99 summaries;
//! * per-run [`StepCounters`] (candidates seen, availability drops,
//!   selections, moved-device inits, downloads, uploads, syncs) whose
//!   totals match the corrected [`crate::CommStats`] accounting exactly;
//! * an optional JSONL per-step event sink (one line per step) behind
//!   `SimConfig::telemetry_jsonl`, so figure runs are replayable.
//!
//! ## Overhead contract
//!
//! When disabled (the default), the recorder is a no-op: no allocation,
//! no `Instant::now` call, no histogram update — every entry point
//! checks one boolean and returns. When enabled, all state lives in
//! fixed-size arrays owned by the [`Telemetry`] value; the only
//! allocation is the buffered JSONL sink, and only when a sink path is
//! configured. `scripts/check.sh` gates the disabled-path step median
//! against the recorded `BENCH_hotpath.json` baseline (±5%).

use crate::config::SimConfig;
use crate::timeline::{EventKind, EVENT_KIND_COUNT, EVENT_KIND_LABELS};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::time::Instant;

/// The instrumented phases of the simulation loop (Algorithm 1 plus the
/// harness's evaluation pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Fault-plane recovery work at step begin: advancing dropout
    /// chains and applying stale similarity-weighted merges for
    /// deadline-missed uploads from the previous step (see
    /// [`crate::faults`]).
    FaultRecovery,
    /// In-edge candidate collection, availability filtering and device
    /// selection (§4.3).
    Selection,
    /// Writing each selected device's initial model: edge-model download
    /// or on-device aggregation for moved devices (§4.2).
    DeviceInit,
    /// Parallel local SGD on the participating devices (Eq. 5).
    LocalTraining,
    /// Edge FedAvg of the uploaded local models (Eq. 6).
    EdgeAggregation,
    /// Compressing uplink deltas and reconstructing them receiver-side
    /// (quantization + top-K + error feedback; see [`crate::compress`]).
    Compress,
    /// Cloud aggregation + broadcast every `T_c` steps (Eq. 7).
    CloudSync,
    /// Held-out evaluation of the (virtual) global model.
    Evaluation,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 8;

    /// Every phase, in loop order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::FaultRecovery,
        Phase::Selection,
        Phase::DeviceInit,
        Phase::LocalTraining,
        Phase::EdgeAggregation,
        Phase::Compress,
        Phase::CloudSync,
        Phase::Evaluation,
    ];

    /// Stable snake_case name (JSONL keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            Phase::FaultRecovery => "fault_recovery",
            Phase::Selection => "selection",
            Phase::DeviceInit => "device_init",
            Phase::LocalTraining => "local_training",
            Phase::EdgeAggregation => "edge_aggregation",
            Phase::Compress => "compress",
            Phase::CloudSync => "cloud_sync",
            Phase::Evaluation => "evaluation",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Number of log2 latency buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds, so the histogram spans 1 ns to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket log2 latency histogram.
///
/// Observations are nanosecond durations; bucket `i` counts values whose
/// floor-log2 is `i` (clamped to the last bucket). Quantiles are
/// resolved to the upper edge of the containing bucket, clamped to the
/// observed min/max, which bounds the quantile error to one octave —
/// plenty for "did p99 regress 2×" questions at zero allocation cost.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn observe(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Largest observed duration (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0 < q <= 1`), resolved to the upper edge of
    /// the containing log2 bucket and clamped to the observed range.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let upper = if i + 1 >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Summarises the histogram under `name`.
    pub fn summary(&self, name: &str) -> PhaseSummary {
        PhaseSummary {
            phase: name.to_string(),
            count: self.count,
            total_ns: self.total_ns,
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max_ns,
        }
    }
}

/// Simulation event counters accumulated over a run.
///
/// These mirror the corrected [`crate::CommStats`] bookkeeping: when
/// telemetry is enabled, `downloads == edge_to_device`,
/// `uploads == device_to_edge`, and `syncs × num_edges / num_devices`
/// reproduce the WAN and broadcast counters (asserted by
/// `crates/core/tests/telemetry_plane.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCounters {
    /// Steps observed.
    pub steps: u64,
    /// Steps where at least one edge selected at least one device —
    /// the wireless-round count of [`crate::CommStats::wall_clock`].
    pub active_steps: u64,
    /// Candidate devices seen across all edges before availability
    /// filtering.
    pub candidates_seen: u64,
    /// Candidates dropped by the availability (straggler) filter.
    pub availability_drops: u64,
    /// Devices selected for participation.
    pub selected: u64,
    /// Selected devices that had just moved and ran on-device
    /// aggregation instead of a plain download.
    pub moved_inits: u64,
    /// Edge → device model downloads actually performed (a moved device
    /// under `OnDevicePolicy::KeepLocal` never downloads).
    pub downloads: u64,
    /// Device → edge model uploads, counting every wireless
    /// transmission attempt (retransmissions included, matching
    /// [`crate::CommStats::device_to_edge`]).
    pub uploads: u64,
    /// Cloud synchronisations.
    pub syncs: u64,
    /// Candidates dropped by the fault-plane dropout process
    /// (on top of `availability_drops`).
    #[serde(default)]
    pub dropout_drops: u64,
    /// Selected devices excluded from edge aggregation by the straggler
    /// deadline; their update lands as a stale merge next step.
    #[serde(default)]
    pub deadline_misses: u64,
    /// Stale similarity-weighted merges applied (one per deadline miss,
    /// one step later).
    #[serde(default)]
    pub stale_merges: u64,
    /// Wireless upload retransmissions caused by fault-plane loss.
    #[serde(default)]
    pub upload_retransmissions: u64,
    /// Uploads abandoned after exhausting the retry budget.
    #[serde(default)]
    pub lost_uploads: u64,
    /// Edges that selected a cohort but received none of its uploads
    /// (edge aggregation skipped, edge model carried forward).
    #[serde(default)]
    pub empty_cohorts: u64,
    /// Edge syncs skipped because the edge's WAN link was down.
    #[serde(default)]
    pub wan_outages: u64,
    /// Device → edge uploads rewritten by the compression plane
    /// (quantized + sparsified, counted once per compressed payload —
    /// retransmissions of the same payload are not recompressed).
    #[serde(default)]
    pub compressed_uploads: u64,
    /// Edge → cloud sync uploads rewritten by the compression plane.
    #[serde(default)]
    pub compressed_syncs: u64,
}

impl StepCounters {
    fn merge(&mut self, other: &StepCounters) {
        self.steps += other.steps;
        self.active_steps += other.active_steps;
        self.candidates_seen += other.candidates_seen;
        self.availability_drops += other.availability_drops;
        self.selected += other.selected;
        self.moved_inits += other.moved_inits;
        self.downloads += other.downloads;
        self.uploads += other.uploads;
        self.syncs += other.syncs;
        self.dropout_drops += other.dropout_drops;
        self.deadline_misses += other.deadline_misses;
        self.stale_merges += other.stale_merges;
        self.upload_retransmissions += other.upload_retransmissions;
        self.lost_uploads += other.lost_uploads;
        self.empty_cohorts += other.empty_cohorts;
        self.wan_outages += other.wan_outages;
        self.compressed_uploads += other.compressed_uploads;
        self.compressed_syncs += other.compressed_syncs;
    }
}

/// Per-step scratch carried through one `step` call: phase durations and
/// event counts, all no-ops while telemetry is disabled.
///
/// Usage inside the step: [`StepProbe::start`] opens a timed segment,
/// [`StepProbe::stop`] closes it into a phase (segments of the same
/// phase accumulate). The probe is consumed by [`Telemetry::end_step`].
#[derive(Debug)]
pub struct StepProbe {
    enabled: bool,
    step_start: Option<Instant>,
    seg_start: Option<Instant>,
    phase_ns: [u64; Phase::COUNT],
    counters: StepCounters,
}

impl StepProbe {
    fn new(enabled: bool) -> Self {
        StepProbe {
            enabled,
            step_start: if enabled { Some(Instant::now()) } else { None },
            seg_start: None,
            phase_ns: [0; Phase::COUNT],
            counters: StepCounters::default(),
        }
    }

    /// Opens a timed segment (no-op when disabled).
    #[inline]
    pub fn start(&mut self) {
        if self.enabled {
            self.seg_start = Some(Instant::now());
        }
    }

    /// Closes the open segment into `phase` (no-op when disabled).
    #[inline]
    pub fn stop(&mut self, phase: Phase) {
        if let Some(s) = self.seg_start.take() {
            self.phase_ns[phase.index()] += s.elapsed().as_nanos() as u64;
        }
    }

    /// Records one edge's candidate set: `seen` before filtering,
    /// `dropped` removed by the availability filter.
    #[inline]
    pub fn candidates(&mut self, seen: usize, dropped: usize) {
        if self.enabled {
            self.counters.candidates_seen += seen as u64;
            self.counters.availability_drops += dropped as u64;
        }
    }

    /// Records one edge's selection outcome. Uploads are counted
    /// separately ([`StepProbe::uploads`]) because the fault plane can
    /// retransmit, delay or lose them.
    #[inline]
    pub fn selected(&mut self, n: usize) {
        if self.enabled {
            self.counters.selected += n as u64;
        }
    }

    /// Records device → edge wireless upload transmissions (every
    /// attempt, mirroring [`crate::CommStats::device_to_edge`]).
    #[inline]
    pub fn uploads(&mut self, n: u64) {
        if self.enabled {
            self.counters.uploads += n;
        }
    }

    /// Records one moved-device on-device init.
    #[inline]
    pub fn moved_init(&mut self) {
        if self.enabled {
            self.counters.moved_inits += 1;
        }
    }

    /// Records edge → device downloads actually performed.
    #[inline]
    pub fn downloads(&mut self, n: u64) {
        if self.enabled {
            self.counters.downloads += n;
        }
    }

    /// Records candidates removed by the fault-plane dropout process.
    #[inline]
    pub fn dropout_drops(&mut self, n: usize) {
        if self.enabled {
            self.counters.dropout_drops += n as u64;
        }
    }

    /// Records one straggler deadline miss.
    #[inline]
    pub fn deadline_miss(&mut self) {
        if self.enabled {
            self.counters.deadline_misses += 1;
        }
    }

    /// Records one stale merge applied this step.
    #[inline]
    pub fn stale_merge(&mut self) {
        if self.enabled {
            self.counters.stale_merges += 1;
        }
    }

    /// Records the retry outcome of one upload: `retries`
    /// retransmissions, plus whether the upload was ultimately lost.
    #[inline]
    pub fn upload_retries(&mut self, retries: u64, lost: bool) {
        if self.enabled {
            self.counters.upload_retransmissions += retries;
            self.counters.lost_uploads += u64::from(lost);
        }
    }

    /// Records one edge whose whole selected cohort failed to deliver.
    #[inline]
    pub fn empty_cohort(&mut self) {
        if self.enabled {
            self.counters.empty_cohorts += 1;
        }
    }

    /// Records one edge sync skipped by a WAN outage.
    #[inline]
    pub fn wan_outage(&mut self) {
        if self.enabled {
            self.counters.wan_outages += 1;
        }
    }

    /// Records `n` device → edge uploads compressed this step.
    #[inline]
    pub fn compressed_uploads(&mut self, n: u64) {
        if self.enabled {
            self.counters.compressed_uploads += n;
        }
    }

    /// Records `n` edge → cloud sync uploads compressed this step.
    #[inline]
    pub fn compressed_syncs(&mut self, n: u64) {
        if self.enabled {
            self.counters.compressed_syncs += n;
        }
    }
}

/// Latency summary of one phase (or of the whole step).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name (snake_case, [`Phase::name`]).
    pub phase: String,
    /// Number of observations (steps in which the phase ran).
    pub count: u64,
    /// Total time spent in the phase.
    pub total_ns: u64,
    /// Median per-step latency (log2-bucket upper edge).
    pub p50_ns: u64,
    /// 95th-percentile per-step latency.
    pub p95_ns: u64,
    /// 99th-percentile per-step latency.
    pub p99_ns: u64,
    /// Worst per-step latency.
    pub max_ns: u64,
}

/// The serialisable end-of-run telemetry summary attached to
/// [`crate::RunRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Per-phase summaries in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSummary>,
    /// Whole-step latency summary (phase timers excluded from nothing:
    /// this is the wall-clock of `Simulation::step`).
    pub step: PhaseSummary,
    /// Event counters for the run.
    pub counters: StepCounters,
    /// Per-event-kind host-time summaries (event-driven runs only;
    /// empty — and absent from JSON — for lockstep runs).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<PhaseSummary>,
}

impl TelemetryReport {
    /// The summary for `phase`, when present.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.phase == phase.name())
    }

    /// Total nanoseconds attributed to in-step phases (everything except
    /// `evaluation`, which runs outside `Simulation::step`). The
    /// telemetry tests pin this to the measured step wall-clock.
    pub fn step_phase_total_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.phase != Phase::Evaluation.name())
            .map(|p| p.total_ns)
            .sum()
    }

    /// Renders the report as an aligned text table (bench-bin output).
    pub fn summary_table(&self) -> String {
        let mut out = format!(
            "{:<18} {:>6} {:>12} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total(ms)", "p50(us)", "p95(us)", "p99(us)"
        );
        for p in self
            .phases
            .iter()
            .chain(self.events.iter())
            .chain(std::iter::once(&self.step))
        {
            out.push_str(&format!(
                "{:<18} {:>6} {:>12.2} {:>10.1} {:>10.1} {:>10.1}\n",
                p.phase,
                p.count,
                p.total_ns as f64 / 1e6,
                p.p50_ns as f64 / 1e3,
                p.p95_ns as f64 / 1e3,
                p.p99_ns as f64 / 1e3,
            ));
        }
        let c = &self.counters;
        out.push_str(&format!(
            "steps {} ({} active), candidates {} (-{} dropped), selected {}, \
             moved inits {}, downloads {}, uploads {}, syncs {}",
            c.steps,
            c.active_steps,
            c.candidates_seen,
            c.availability_drops,
            c.selected,
            c.moved_inits,
            c.downloads,
            c.uploads,
            c.syncs,
        ));
        let faults = c.dropout_drops
            + c.deadline_misses
            + c.stale_merges
            + c.upload_retransmissions
            + c.lost_uploads
            + c.empty_cohorts
            + c.wan_outages;
        if faults > 0 {
            out.push_str(&format!(
                "\nfaults: dropout drops {}, deadline misses {}, stale merges {}, \
                 retransmissions {}, lost uploads {}, empty cohorts {}, wan outages {}",
                c.dropout_drops,
                c.deadline_misses,
                c.stale_merges,
                c.upload_retransmissions,
                c.lost_uploads,
                c.empty_cohorts,
                c.wan_outages,
            ));
        }
        if c.compressed_uploads + c.compressed_syncs > 0 {
            out.push_str(&format!(
                "\ncompression: compressed uploads {}, compressed syncs {}",
                c.compressed_uploads, c.compressed_syncs,
            ));
        }
        out
    }
}

/// The per-simulation telemetry recorder.
///
/// Constructed disabled by default; [`SimConfig::telemetry`] (or a
/// configured JSONL path) turns it on. See the module docs for the
/// overhead contract.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    phase_hist: [LatencyHistogram; Phase::COUNT],
    step_hist: LatencyHistogram,
    event_hist: [LatencyHistogram; EVENT_KIND_COUNT],
    counters: StepCounters,
    sink: Option<BufWriter<File>>,
}

impl Telemetry {
    /// A permanently-disabled recorder (every call is a no-op).
    pub fn disabled() -> Self {
        Telemetry::new(false, None)
    }

    /// Creates a recorder; when `jsonl_path` is set the recorder is
    /// enabled regardless of `enabled` and appends one event line per
    /// step to the file (truncating any previous content). A sink that
    /// cannot be opened is reported to stderr and dropped — the run
    /// proceeds with in-memory telemetry only.
    pub fn new(enabled: bool, jsonl_path: Option<&str>) -> Self {
        let sink = jsonl_path.and_then(|path| match File::create(path) {
            Ok(f) => Some(BufWriter::new(f)),
            Err(e) => {
                eprintln!("[telemetry] cannot open JSONL sink {path}: {e}");
                None
            }
        });
        Telemetry {
            enabled: enabled || sink.is_some(),
            phase_hist: Default::default(),
            step_hist: LatencyHistogram::default(),
            event_hist: Default::default(),
            counters: StepCounters::default(),
            sink,
        }
    }

    /// Builds the recorder described by a simulation config.
    pub fn from_config(config: &SimConfig) -> Self {
        Telemetry::new(config.telemetry, config.telemetry_jsonl.as_deref())
    }

    /// Whether the recorder is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a per-step probe (records the step start time when
    /// enabled).
    pub fn begin_step(&self) -> StepProbe {
        StepProbe::new(self.enabled)
    }

    /// Closes a step: observes the step + phase histograms, merges the
    /// probe's counters, and emits the JSONL event when a sink is
    /// configured.
    pub fn end_step(&mut self, t: usize, active: bool, synced: bool, mut probe: StepProbe) {
        if !self.enabled {
            return;
        }
        let step_ns = probe
            .step_start
            .take()
            .map_or(0, |s| s.elapsed().as_nanos() as u64);
        self.step_hist.observe(step_ns);
        for (i, &ns) in probe.phase_ns.iter().enumerate() {
            if ns > 0 {
                self.phase_hist[i].observe(ns);
            }
        }
        probe.counters.steps = 1;
        probe.counters.active_steps = u64::from(active);
        probe.counters.syncs = u64::from(synced);
        self.counters.merge(&probe.counters);
        if let Some(w) = &mut self.sink {
            let c = &probe.counters;
            let p = &probe.phase_ns;
            let line = writeln!(
                w,
                "{{\"step\":{t},\"active\":{active},\"sync\":{synced},\"step_ns\":{step_ns},\
                 \"selection_ns\":{},\"device_init_ns\":{},\"local_training_ns\":{},\
                 \"edge_aggregation_ns\":{},\"compress_ns\":{},\"cloud_sync_ns\":{},\
                 \"fault_recovery_ns\":{},\
                 \"candidates\":{},\"dropped\":{},\"selected\":{},\"moved_inits\":{},\
                 \"downloads\":{},\"uploads\":{},\"dropout_drops\":{},\"deadline_misses\":{},\
                 \"stale_merges\":{},\"retransmissions\":{},\"lost_uploads\":{},\
                 \"empty_cohorts\":{},\"wan_outages\":{},\
                 \"compressed_uploads\":{},\"compressed_syncs\":{}}}",
                p[Phase::Selection.index()],
                p[Phase::DeviceInit.index()],
                p[Phase::LocalTraining.index()],
                p[Phase::EdgeAggregation.index()],
                p[Phase::Compress.index()],
                p[Phase::CloudSync.index()],
                p[Phase::FaultRecovery.index()],
                c.candidates_seen,
                c.availability_drops,
                c.selected,
                c.moved_inits,
                c.downloads,
                c.uploads,
                c.dropout_drops,
                c.deadline_misses,
                c.stale_merges,
                c.upload_retransmissions,
                c.lost_uploads,
                c.empty_cohorts,
                c.wan_outages,
                c.compressed_uploads,
                c.compressed_syncs,
            );
            if let Err(e) = line {
                eprintln!("[telemetry] JSONL sink write failed, disabling: {e}");
                self.sink = None;
            }
        }
    }

    /// Starts an event-processing timer (event-driven mode); pair with
    /// [`Telemetry::observe_event_since`]. `None` while disabled.
    pub fn event_timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes an event timer into the per-kind histogram for `kind`.
    pub fn observe_event_since(&mut self, kind: EventKind, start: Option<Instant>) {
        if let Some(s) = start {
            self.event_hist[kind.index()].observe(s.elapsed().as_nanos() as u64);
        }
    }

    /// Merges a probe that ran *between* steps (timer-driven cloud
    /// syncs, late upload arrivals): counters accumulate and any timed
    /// phase segments land in the phase histograms, but no step is
    /// counted — step/active/sync accounting belongs to `end_step`.
    pub fn absorb_probe(&mut self, probe: StepProbe) {
        if !self.enabled {
            return;
        }
        for (i, &ns) in probe.phase_ns.iter().enumerate() {
            if ns > 0 {
                self.phase_hist[i].observe(ns);
            }
        }
        self.counters.merge(&probe.counters);
    }

    /// Starts an out-of-step phase timer (e.g. evaluation inside
    /// `run`); pair with [`Telemetry::observe_since`].
    pub fn phase_timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes an out-of-step phase timer into `phase`.
    pub fn observe_since(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(s) = start {
            self.phase_hist[phase.index()].observe(s.elapsed().as_nanos() as u64);
        }
    }

    /// The run's event counters so far.
    pub fn counters(&self) -> &StepCounters {
        &self.counters
    }

    /// Overwrites the event counters from a checkpoint. Counters are
    /// deterministic and resumable; the latency histograms are host
    /// wall-clock measurements and deliberately start empty after a
    /// restore (see [`crate::checkpoint`]).
    pub fn restore_counters(&mut self, counters: StepCounters) {
        self.counters = counters;
    }

    /// The per-phase latency histogram.
    pub fn phase_histogram(&self, phase: Phase) -> &LatencyHistogram {
        &self.phase_hist[phase.index()]
    }

    /// The whole-step latency histogram.
    pub fn step_histogram(&self) -> &LatencyHistogram {
        &self.step_hist
    }

    /// Flushes the JSONL sink (run teardown; buffered lines would
    /// otherwise only land on drop).
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.sink {
            if let Err(e) = w.flush() {
                eprintln!("[telemetry] JSONL sink flush failed: {e}");
            }
        }
    }

    /// The end-of-run report; `None` while disabled.
    pub fn report(&self) -> Option<TelemetryReport> {
        if !self.enabled {
            return None;
        }
        Some(TelemetryReport {
            phases: Phase::ALL
                .iter()
                .map(|&p| self.phase_hist[p.index()].summary(p.name()))
                .collect(),
            step: self.step_hist.summary("step"),
            counters: self.counters,
            events: self
                .event_hist
                .iter()
                .zip(EVENT_KIND_LABELS.iter())
                .filter(|(h, _)| h.count() > 0)
                .map(|(h, &label)| h.summary(label))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            HISTOGRAM_BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::default();
        for ns in [3u64, 5, 9, 17, 33, 65, 129, 1025, 4097, 70_000] {
            h.observe(ns);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
        assert!(p99 <= h.max_ns(), "p99 {p99} max {}", h.max_ns());
        assert!(p50 >= 3, "p50 below min");
        assert_eq!(h.count(), 10);
        assert_eq!(
            h.total_ns(),
            3 + 5 + 9 + 17 + 33 + 65 + 129 + 1025 + 4097 + 70_000
        );
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn single_observation_dominates_all_quantiles() {
        let mut h = LatencyHistogram::default();
        h.observe(1_000_000);
        assert_eq!(h.quantile(0.5), 1_000_000);
        assert_eq!(h.quantile(0.99), 1_000_000);
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut tel = Telemetry::disabled();
        let mut probe = tel.begin_step();
        probe.start();
        probe.stop(Phase::Selection);
        probe.candidates(10, 3);
        probe.selected(4);
        tel.end_step(0, true, true, probe);
        assert!(tel.report().is_none());
        assert_eq!(tel.counters().steps, 0);
        assert_eq!(tel.step_histogram().count(), 0);
    }

    #[test]
    fn enabled_probe_accumulates_counters_and_histograms() {
        let mut tel = Telemetry::new(true, None);
        for t in 0..3 {
            let mut probe = tel.begin_step();
            probe.start();
            probe.stop(Phase::Selection);
            probe.candidates(10, 2);
            probe.selected(4);
            probe.uploads(4);
            probe.moved_init();
            probe.downloads(3);
            tel.end_step(t, t != 1, t == 2, probe);
        }
        let report = tel.report().expect("enabled recorder reports");
        assert_eq!(report.counters.steps, 3);
        assert_eq!(report.counters.active_steps, 2);
        assert_eq!(report.counters.syncs, 1);
        assert_eq!(report.counters.candidates_seen, 30);
        assert_eq!(report.counters.availability_drops, 6);
        assert_eq!(report.counters.selected, 12);
        assert_eq!(report.counters.uploads, 12);
        assert_eq!(report.counters.moved_inits, 3);
        assert_eq!(report.counters.downloads, 9);
        assert_eq!(report.step.count, 3);
        assert_eq!(report.phases.len(), Phase::COUNT);
        // The selection segments ran; training never did.
        assert_eq!(report.phase(Phase::Selection).unwrap().count, 3);
        assert_eq!(report.phase(Phase::LocalTraining).unwrap().count, 0);
    }

    #[test]
    fn fault_counters_accumulate_and_render() {
        let mut tel = Telemetry::new(true, None);
        let mut probe = tel.begin_step();
        probe.start();
        probe.stop(Phase::FaultRecovery);
        probe.dropout_drops(3);
        probe.deadline_miss();
        probe.stale_merge();
        probe.upload_retries(2, true);
        probe.empty_cohort();
        probe.wan_outage();
        tel.end_step(0, true, false, probe);
        let report = tel.report().unwrap();
        let c = &report.counters;
        assert_eq!(c.dropout_drops, 3);
        assert_eq!(c.deadline_misses, 1);
        assert_eq!(c.stale_merges, 1);
        assert_eq!(c.upload_retransmissions, 2);
        assert_eq!(c.lost_uploads, 1);
        assert_eq!(c.empty_cohorts, 1);
        assert_eq!(c.wan_outages, 1);
        assert_eq!(report.phase(Phase::FaultRecovery).unwrap().count, 1);
        let table = report.summary_table();
        assert!(table.contains("stale merges 1"), "{table}");
        // A fault-free report keeps the legacy single-line footer.
        let clean = Telemetry::new(true, None).report().unwrap().summary_table();
        assert!(!clean.contains("stale merges"), "{clean}");
    }

    #[test]
    fn legacy_counters_json_still_deserialises() {
        let legacy = r#"{"steps":3,"active_steps":2,"candidates_seen":30,
            "availability_drops":6,"selected":12,"moved_inits":3,
            "downloads":9,"uploads":12,"syncs":1}"#;
        let c: StepCounters = serde_json::from_str(legacy).unwrap();
        assert_eq!(c.uploads, 12);
        assert_eq!(c.dropout_drops, 0);
        assert_eq!(c.wan_outages, 0);
    }

    #[test]
    fn event_histograms_and_absorbed_probes_surface_in_report() {
        let mut tel = Telemetry::new(true, None);
        let start = tel.event_timer();
        assert!(start.is_some());
        tel.observe_event_since(
            EventKind::DeviceUpload {
                edge: 0,
                device: 1,
                wave: 1,
            },
            start,
        );
        tel.observe_event_since(EventKind::CloudSync { timer: true }, tel.event_timer());
        // A between-steps probe: counters land, no step is counted.
        let mut probe = tel.begin_step();
        probe.start();
        probe.stop(Phase::CloudSync);
        probe.uploads(2);
        tel.absorb_probe(probe);
        let report = tel.report().unwrap();
        assert_eq!(report.counters.steps, 0);
        assert_eq!(report.counters.uploads, 2);
        assert_eq!(report.events.len(), 2);
        assert!(report.events.iter().any(|e| e.phase == "device_upload"));
        assert!(report.events.iter().any(|e| e.phase == "cloud_sync"));
        let json = serde_json::to_string(&report).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // Lockstep reports omit the events key entirely.
        let lockstep = Telemetry::new(true, None).report().unwrap();
        assert!(lockstep.events.is_empty());
        assert!(!serde_json::to_string(&lockstep).unwrap().contains("events"));
        // Disabled recorders absorb probes as no-ops.
        let mut off = Telemetry::disabled();
        assert!(off.event_timer().is_none());
        let p = off.begin_step();
        off.absorb_probe(p);
        assert_eq!(off.counters().uploads, 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut tel = Telemetry::new(true, None);
        let mut probe = tel.begin_step();
        probe.start();
        probe.stop(Phase::LocalTraining);
        probe.selected(2);
        tel.end_step(0, true, false, probe);
        let report = tel.report().unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_table_lists_every_phase() {
        let tel = Telemetry::new(true, None);
        let table = tel.report().unwrap().summary_table();
        for p in Phase::ALL {
            assert!(table.contains(p.name()), "missing {}", p.name());
        }
        assert!(table.contains("syncs 0"));
    }
}
