//! Result-based simulation construction: [`SimulationBuilder`], the
//! typed [`SimError`], and the shared-input cache that lets a sweep pay
//! dataset/partition/trace construction once per unique input key
//! instead of once per scenario.
//!
//! [`crate::Simulation::new`] predates this module and panics on an
//! invalid configuration; it remains only as a deprecated compatibility
//! wrapper. New code — and every example, test and bench bin in-tree —
//! goes through the builder:
//!
//! ```
//! use middle_core::{Algorithm, SimConfig, SimulationBuilder};
//! use middle_data::Task;
//!
//! let cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
//! let record = SimulationBuilder::new(cfg)
//!     .build()
//!     .expect("valid config")
//!     .run();
//! println!("final accuracy: {:.3}", record.final_accuracy());
//! ```
//!
//! ## Input sharing
//!
//! Simulation construction splits into two stages: the *shared inputs*
//! (synthetic base data, device partition, test set, initial model,
//! home-edge assignment, mobility trace — everything immutable during a
//! run) and the per-run mutable state built from them. [`SharedInputs`]
//! captures the first stage; [`InputCache`] memoises it behind an `Arc`
//! keyed by the config fields the inputs actually depend on
//! ([`input_key`]), so a scenario grid that varies `K`, `T_c` or fault
//! presets over a fixed population reuses one entry. A cache-hit build
//! is bitwise identical to a cold build: the inputs are deterministic
//! functions of the key fields, and per-run state is cloned from them
//! either way.

use crate::config::{PopulationMode, SimConfig};
use crate::sim::Simulation;
use middle_data::partition::{partition, Partition};
use middle_data::synthetic::SyntheticSource;
use middle_data::Dataset;
use middle_mobility::Trace;
use middle_nn::{zoo, Sequential};
use middle_tensor::random::{derive_seed, rng};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Typed construction / checkpoint / sweep errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`SimConfig::validate`].
    InvalidConfig {
        /// The first violated constraint.
        message: String,
    },
    /// A caller-supplied trace disagrees with the configuration
    /// (device count, edge count, or horizon).
    TraceMismatch {
        /// What disagreed.
        message: String,
    },
    /// A checkpoint could not be applied to this simulation (schema
    /// version, config digest, or population shape mismatch) or could
    /// not be parsed.
    CheckpointMismatch {
        /// What disagreed.
        message: String,
    },
    /// A sweep filesystem operation failed (checkpoint or state file).
    Io {
        /// The failing path.
        path: String,
        /// The underlying error.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { message } => write!(f, "invalid SimConfig: {message}"),
            SimError::TraceMismatch { message } => write!(f, "trace mismatch: {message}"),
            SimError::CheckpointMismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
            SimError::Io { path, message } => write!(f, "io error at {path}: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The immutable inputs of a simulation: everything that depends only
/// on [`input_key`] fields and never mutates during a run.
///
/// Built once (directly or through an [`InputCache`]) and cloned into
/// per-run state by the builder.
pub struct SharedInputs {
    pub(crate) partition: Partition,
    pub(crate) device_data: Vec<Dataset>,
    pub(crate) test: Dataset,
    pub(crate) init: Sequential,
    pub(crate) homes: Vec<usize>,
    pub(crate) trace: Trace,
    /// The shared base dataset, kept only in lazy population mode so
    /// device datasets can be re-gathered on materialisation
    /// (`device_data` stays empty there). Dense mode pre-gathers
    /// `device_data` and drops the base.
    pub(crate) base: Option<Dataset>,
}

impl SharedInputs {
    /// Constructs the shared inputs for a *validated* configuration:
    /// synthesises the base and test data (streams 1–4), partitions the
    /// base into per-device datasets, initialises the model (stream 5),
    /// assigns home edges from the partition's major classes, and
    /// generates the mobility trace (stream 7).
    pub fn build(config: &SimConfig) -> Self {
        let seed = config.seed;
        let source = SyntheticSource::new(config.task, derive_seed(seed, 1));
        let base = source.generate_balanced(
            config.num_devices * config.samples_per_device,
            derive_seed(seed, 2),
        );
        let part = partition(
            &base,
            config.num_devices,
            config.samples_per_device,
            config.scheme,
            derive_seed(seed, 3),
        );
        let test = source.generate_balanced(config.test_samples, derive_seed(seed, 4));
        let spec = config.task.spec();
        let init = zoo::model_for_task(config.task.name(), &spec, &mut rng(derive_seed(seed, 5)));

        // Home edges: cluster devices by major class so edge-level data
        // distributions are Non-IID (paper §3.2); devices without a
        // defined major class get round-robin homes.
        let homes: Vec<usize> = (0..config.num_devices)
            .map(|m| match part.major_class[m] {
                Some(c) => c % config.num_edges,
                None => m % config.num_edges,
            })
            .collect();
        let trace = crate::sim::build_trace(config, &homes);
        // Dense mode gathers each device's samples once here, not once
        // per run: subsetting is a row gather over the base dataset, and
        // a sweep cell that shares these inputs pays it a single time.
        // Lazy mode keeps the base instead and re-gathers per
        // materialisation — N pre-gathered datasets are exactly the O(N)
        // resident cost the mode exists to avoid.
        let (device_data, base) = match config.population {
            PopulationMode::Dense => {
                let device_data: Vec<Dataset> = (0..config.num_devices)
                    .map(|m| base.subset(&part.assignments[m]))
                    .collect();
                (device_data, None)
            }
            PopulationMode::Lazy => (Vec::new(), Some(base)),
        };
        SharedInputs {
            partition: part,
            device_data,
            test,
            init,
            homes,
            trace,
            base,
        }
    }

    /// The mobility trace generated for the configuration.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The home-edge assignment derived from the partition.
    pub fn homes(&self) -> &[usize] {
        &self.homes
    }
}

/// The cache key for [`SharedInputs`]: exactly the config fields the
/// inputs are a function of. Two configs with equal keys produce
/// bitwise-identical inputs; fields like `devices_per_edge`,
/// `cloud_interval`, `faults` or `telemetry` never enter the key, so a
/// grid over them shares one entry.
pub fn input_key(config: &SimConfig) -> String {
    format!(
        "task={};edges={};devices={};spd={};scheme={};test={};steps={};mobility={};seed={};pop={:?}",
        config.task.name(),
        config.num_edges,
        config.num_devices,
        config.samples_per_device,
        serde_json::to_string(&config.scheme).unwrap_or_default(),
        config.test_samples,
        config.steps,
        serde_json::to_string(&config.mobility).unwrap_or_default(),
        config.seed,
        config.population,
    )
}

/// A thread-safe memo of [`SharedInputs`] keyed by [`input_key`].
///
/// Concurrent builders of *different* keys construct in parallel;
/// concurrent builders of the *same* key block on one construction (a
/// per-key [`OnceLock`]) so a 50-scenario grid never duplicates work.
#[derive(Default)]
pub struct InputCache {
    entries: Mutex<HashMap<String, Arc<OnceLock<Arc<SharedInputs>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InputCache {
    /// An empty cache, ready to share across threads.
    pub fn new() -> Arc<InputCache> {
        Arc::new(InputCache::default())
    }

    /// Returns the shared inputs for `config`, constructing them on the
    /// first request for the key.
    pub fn get_or_build(&self, config: &SimConfig) -> Arc<SharedInputs> {
        let key = input_key(config);
        let cell = {
            let mut entries = self.entries.lock().expect("input cache poisoned");
            entries.entry(key).or_default().clone()
        };
        let mut built = false;
        let inputs = cell
            .get_or_init(|| {
                built = true;
                Arc::new(SharedInputs::build(config))
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        inputs
    }

    /// Requests served from an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that constructed a new entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct input keys currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("input cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fallible, composable construction of a [`Simulation`].
///
/// The builder owns a config and optional overrides; [`build`] validates
/// everything up front and returns a typed [`SimError`] instead of
/// panicking. See the module docs for an example.
///
/// [`build`]: SimulationBuilder::build
pub struct SimulationBuilder {
    config: SimConfig,
    trace: Option<Trace>,
    cache: Option<Arc<InputCache>>,
    telemetry: Option<bool>,
    telemetry_jsonl: Option<String>,
}

impl SimulationBuilder {
    /// Starts a builder for `config`.
    pub fn new(config: SimConfig) -> Self {
        SimulationBuilder {
            config,
            trace: None,
            cache: None,
            telemetry: None,
            telemetry_jsonl: None,
        }
    }

    /// Replaces the generated mobility trace with a caller-supplied one
    /// (e.g. the Figure 2 scripted device swap, or an imported
    /// ONE-simulator trace). Validated against the config at build time.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Shares immutable inputs through `cache`: the build consults the
    /// cache (keyed by [`input_key`]) instead of constructing datasets,
    /// partition and trace from scratch.
    pub fn with_shared_inputs(mut self, cache: Arc<InputCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables (or disables) the telemetry plane, overriding
    /// [`SimConfig::telemetry`]. This is the first-class replacement for
    /// the removed `MIDDLE_TELEMETRY` environment variable.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = Some(enabled);
        self
    }

    /// Streams one JSONL telemetry event per step to `path` (implies
    /// [`SimulationBuilder::telemetry`]). First-class replacement for
    /// the removed `MIDDLE_TELEMETRY_JSONL` environment variable.
    pub fn telemetry_jsonl(mut self, path: impl Into<String>) -> Self {
        self.telemetry_jsonl = Some(path.into());
        self
    }

    /// Validates the configuration (and trace, when supplied) and
    /// constructs the simulation.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when the config fails
    /// [`SimConfig::validate`]; [`SimError::TraceMismatch`] when a
    /// supplied trace disagrees with the config's device/edge counts or
    /// is shorter than the configured horizon.
    pub fn build(self) -> Result<Simulation, SimError> {
        let mut config = self.config;
        if let Some(on) = self.telemetry {
            config.telemetry = on;
        }
        if let Some(path) = self.telemetry_jsonl {
            config.telemetry_jsonl = Some(path);
        }
        config
            .validate()
            .map_err(|message| SimError::InvalidConfig { message })?;
        if let Some(trace) = &self.trace {
            if trace.devices() != config.num_devices {
                return Err(SimError::TraceMismatch {
                    message: format!(
                        "trace device count {} does not match config num_devices {}",
                        trace.devices(),
                        config.num_devices
                    ),
                });
            }
            if trace.num_edges() != config.num_edges {
                return Err(SimError::TraceMismatch {
                    message: format!(
                        "trace edge count {} does not match config num_edges {}",
                        trace.num_edges(),
                        config.num_edges
                    ),
                });
            }
            if trace.steps() < config.steps {
                return Err(SimError::TraceMismatch {
                    message: format!(
                        "trace shorter than the configured horizon ({} < {})",
                        trace.steps(),
                        config.steps
                    ),
                });
            }
        }
        let inputs = match &self.cache {
            Some(cache) => cache.get_or_build(&config),
            None => Arc::new(SharedInputs::build(&config)),
        };
        let mut sim = Simulation::from_shared(config, &inputs);
        if let Some(trace) = self.trace {
            sim.set_trace(trace);
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use middle_data::Task;

    fn tiny() -> SimConfig {
        SimConfig::tiny(Task::Mnist, Algorithm::middle())
    }

    #[test]
    fn build_succeeds_on_valid_config() {
        let sim = SimulationBuilder::new(tiny()).build().unwrap();
        assert_eq!(sim.devices().len(), 8);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut cfg = tiny();
        cfg.steps = 0;
        let err = match SimulationBuilder::new(cfg).build() {
            Ok(_) => panic!("zero-step config must not build"),
            Err(e) => e,
        };
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        assert!(err.to_string().starts_with("invalid SimConfig:"));
    }

    #[test]
    fn telemetry_overrides_apply() {
        let sim = SimulationBuilder::new(tiny())
            .telemetry(true)
            .build()
            .unwrap();
        assert!(sim.telemetry().is_enabled());
        assert!(sim.config().telemetry);
    }

    #[test]
    fn input_key_ignores_run_only_fields() {
        let a = tiny();
        let mut b = tiny();
        b.devices_per_edge = 4;
        b.cloud_interval = 2;
        b.telemetry = true;
        b.compression.enabled = true;
        b.compression.quantize_bits = 4;
        b.compression.top_frac = 0.1;
        assert_eq!(input_key(&a), input_key(&b));
        let mut c = tiny();
        c.seed = 99;
        assert_ne!(input_key(&a), input_key(&c));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = InputCache::new();
        let cfg = tiny();
        let first = cache.get_or_build(&cfg);
        let second = cache.get_or_build(&cfg);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }
}
