//! A mobile device: local data, the carried local model, and local
//! training (paper Eqs. 1 and 5).

use middle_data::batch::{random_batch, random_batch_into};
use middle_data::Dataset;
use middle_nn::loss::{per_sample_cross_entropy, per_sample_cross_entropy_into};
use middle_nn::optim::Optimizer;
use middle_nn::params::{unflatten, FlatView};
use middle_nn::{NetScratch, OptimizerKind, Sequential};
use middle_tensor::random::{derive_seed, rng};
use middle_tensor::Tensor;
use rand::rngs::StdRng;

/// Persistent per-device training workspace: batch-gather buffers, the
/// network scratch for the train and evaluation passes, the per-sample
/// loss buffer, and a cached optimizer. After the first participation a
/// device's local training allocates nothing in steady state.
///
/// The scratch holds no semantic state: the cached optimizer is reset on
/// every participation (bitwise-equivalent to a fresh build — see the
/// `optimizer_reset_matches_fresh_build` property test), and every buffer
/// is fully overwritten before being read. Checkpoints therefore never
/// capture it.
struct TrainScratch {
    net: NetScratch,
    eval: NetScratch,
    batch_idx: Vec<usize>,
    batch_x: Tensor,
    batch_y: Vec<usize>,
    losses: Vec<f32>,
    opt: Option<(OptimizerKind, Box<dyn Optimizer>)>,
}

impl TrainScratch {
    fn new() -> Self {
        TrainScratch {
            net: NetScratch::new(),
            eval: NetScratch::new(),
            batch_idx: Vec::new(),
            batch_x: Tensor::zeros([0]),
            batch_y: Vec::new(),
            losses: Vec::new(),
            opt: None,
        }
    }
}

/// One mobile device.
///
/// The device persistently carries its local model `w_m` between time
/// steps — the crux of MIDDLE: after moving to a new edge, this carried
/// model transports the previous edge's "knowledge".
///
/// Alongside the structured model the device maintains a [`FlatView`]
/// cache (flat parameter vector + squared norm) so the selection and
/// on-device aggregation hot paths never flatten per candidate. Code
/// that mutates `model` directly must call [`Device::invalidate_flat`]
/// (or [`Device::refresh_flat`]); the built-in mutators do so already.
pub struct Device {
    /// Stable device identifier (index into the simulation's device set).
    pub id: usize,
    /// The carried local model `w_m^t`.
    pub model: Sequential,
    /// Oort statistical utility from the most recent participation;
    /// `None` until the device first trains.
    pub oort_utility: Option<f32>,
    /// Time step of the most recent participation (staleness tracking).
    pub last_participation: Option<usize>,
    data: Dataset,
    rng: StdRng,
    flat: FlatView,
    scratch: TrainScratch,
}

impl Device {
    /// Creates a device with its local dataset and initial model.
    pub fn new(id: usize, data: Dataset, initial_model: Sequential, seed: u64) -> Self {
        assert!(!data.is_empty(), "device {id} has no data");
        let flat = FlatView::of(&initial_model);
        Device {
            id,
            model: initial_model,
            oort_utility: None,
            last_participation: None,
            data,
            rng: rng(derive_seed(seed, 0xD0_0000 + id as u64)),
            flat,
            scratch: TrainScratch::new(),
        }
    }

    /// Number of local samples (`d_m`).
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The device's local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Cached flat parameter vector of the carried model.
    ///
    /// # Panics
    /// Panics when the cache is dirty (model mutated without a refresh).
    pub fn flat(&self) -> &[f32] {
        self.flat.flat()
    }

    /// Cached squared L2 norm of the carried model's parameters.
    pub fn flat_norm_sq(&self) -> f32 {
        self.flat.norm_sq()
    }

    /// Marks the flat cache stale after a direct mutation of `model`.
    pub fn invalidate_flat(&mut self) {
        self.flat.invalidate();
    }

    /// Recomputes the flat cache from the current carried model.
    pub fn refresh_flat(&mut self) {
        self.flat.refresh(&self.model);
    }

    /// Overwrites the carried model's parameters from a flat vector whose
    /// squared norm is already known (the broadcast fast path: the cache
    /// is filled by copying, with no re-flatten and no re-norm).
    pub fn load_flat(&mut self, flat: &[f32], norm_sq: f32) {
        unflatten(&mut self.model, flat);
        self.flat.set_from_slice(flat, norm_sq);
    }

    /// Runs `I` local SGD steps (Eq. 5) on the carried model in place
    /// (the caller positions `w_m` first, e.g. via [`Device::load_flat`]
    /// or on-device aggregation), and refreshes the Oort statistical
    /// utility and the flat cache. Returns the final mini-batch training
    /// loss.
    pub fn local_train(
        &mut self,
        local_steps: usize,
        batch_size: usize,
        optimizer: &OptimizerKind,
        time_step: usize,
    ) -> f32 {
        assert!(local_steps > 0, "need at least one local step");
        let bs = batch_size.min(self.data.len()).max(1);
        let TrainScratch {
            net,
            batch_idx,
            batch_x,
            batch_y,
            opt: opt_slot,
            ..
        } = &mut self.scratch;
        // Optimizer state must not persist across participations
        // (momentum/Adam state is meaningless after the model is replaced
        // by aggregation), so the cached optimizer is reset — which is
        // bitwise-equivalent to a fresh `build` — and rebuilt only when
        // the configured kind changes.
        let opt = match opt_slot {
            Some((kind, o)) if kind == optimizer => {
                o.reset();
                o
            }
            slot => {
                *slot = Some((*optimizer, optimizer.build()));
                &mut slot.as_mut().expect("just stored").1
            }
        };
        let mut loss = 0.0f32;
        for _ in 0..local_steps {
            random_batch_into(&self.data, bs, &mut self.rng, batch_idx, batch_x, batch_y);
            loss = self
                .model
                .train_batch_ws(batch_x, batch_y, opt.as_mut(), net);
        }
        self.refresh_oort_utility_ws();
        self.last_participation = Some(time_step);
        self.flat.refresh(&self.model);
        loss
    }

    /// The pre-workspace [`local_train`](Self::local_train): per-sample
    /// conv kernels via the allocating `train_batch` path, a fresh
    /// optimizer and fresh batch buffers every participation. Kept as the
    /// reference-mode oracle — the Fast/Reference fingerprint gate in
    /// `hotpath_equiv` proves the workspace path bitwise-matches it.
    pub fn local_train_reference(
        &mut self,
        local_steps: usize,
        batch_size: usize,
        optimizer: &OptimizerKind,
        time_step: usize,
    ) -> f32 {
        assert!(local_steps > 0, "need at least one local step");
        let mut opt = optimizer.build();
        let bs = batch_size.min(self.data.len()).max(1);
        let mut loss = 0.0f32;
        for _ in 0..local_steps {
            let (x, y) = random_batch(&self.data, bs, &mut self.rng);
            loss = self.model.train_batch(&x, &y, opt.as_mut());
        }
        self.refresh_oort_utility();
        self.last_participation = Some(time_step);
        self.flat.refresh(&self.model);
        loss
    }

    /// Recomputes the Oort statistical utility
    /// `|B_m| · sqrt(mean(loss_i²))` over the device's local samples with
    /// the current carried model.
    pub fn refresh_oort_utility(&mut self) {
        let logits = self.model.infer(self.data.inputs());
        let losses = per_sample_cross_entropy(&logits, self.data.labels());
        let mean_sq = losses.iter().map(|l| l * l).sum::<f32>() / losses.len() as f32;
        self.oort_utility = Some(self.data.len() as f32 * mean_sq.sqrt());
    }

    /// [`refresh_oort_utility`](Self::refresh_oort_utility) through the
    /// persistent evaluation workspace — bitwise-identical result, zero
    /// allocations in steady state.
    fn refresh_oort_utility_ws(&mut self) {
        let logits = self
            .model
            .infer_ws(self.data.inputs(), &mut self.scratch.eval);
        per_sample_cross_entropy_into(logits, self.data.labels(), &mut self.scratch.losses);
        let losses = &self.scratch.losses;
        let mean_sq = losses.iter().map(|l| l * l).sum::<f32>() / losses.len() as f32;
        self.oort_utility = Some(self.data.len() as f32 * mean_sq.sqrt());
    }

    /// Steps since the device last participated (`None` if never).
    pub fn staleness(&self, now: usize) -> Option<usize> {
        self.last_participation.map(|t| now.saturating_sub(t))
    }

    /// The device's private batch-sampling RNG, for checkpoint capture.
    pub fn rng_ref(&self) -> &StdRng {
        &self.rng
    }

    /// Overwrites the batch-sampling RNG from a checkpointed state.
    pub fn restore_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_data::synthetic::{SyntheticSource, Task};
    use middle_nn::params::flatten;
    use middle_nn::zoo;
    use middle_tensor::ops::dot_slices;
    use middle_tensor::random::rng as seed_rng;

    fn mk_device(id: usize, seed: u64) -> Device {
        let src = SyntheticSource::new(Task::Mnist, 5);
        let data = src.generate_balanced(20, id as u64);
        let spec = Task::Mnist.spec();
        let model = zoo::logistic(&spec, &mut seed_rng(1));
        Device::new(id, data, model, seed)
    }

    #[test]
    fn local_training_reduces_loss() {
        let mut d = mk_device(0, 42);
        let (inputs, labels) = (d.data().inputs().clone(), d.data().labels().to_vec());
        let before = d.model.eval_loss(&inputs, &labels);
        let kind = OptimizerKind::Sgd { lr: 0.1 };
        d.local_train(20, 10, &kind, 3);
        let after = d.model.eval_loss(&inputs, &labels);
        assert!(after < before, "{before} -> {after}");
        assert_eq!(d.last_participation, Some(3));
    }

    #[test]
    fn oort_utility_set_after_training() {
        let mut d = mk_device(1, 43);
        assert!(d.oort_utility.is_none());
        d.local_train(1, 5, &OptimizerKind::Sgd { lr: 0.01 }, 0);
        let u = d.oort_utility.unwrap();
        assert!(u > 0.0 && u.is_finite());
    }

    #[test]
    fn oort_utility_falls_as_model_fits() {
        let mut d = mk_device(2, 44);
        d.local_train(1, 10, &OptimizerKind::Sgd { lr: 0.05 }, 0);
        let early = d.oort_utility.unwrap();
        d.local_train(40, 10, &OptimizerKind::Sgd { lr: 0.05 }, 1);
        let late = d.oort_utility.unwrap();
        assert!(late < early, "{early} -> {late}");
    }

    #[test]
    fn staleness_counts_from_last_participation() {
        let mut d = mk_device(3, 45);
        assert_eq!(d.staleness(10), None);
        d.local_train(1, 5, &OptimizerKind::Sgd { lr: 0.01 }, 4);
        assert_eq!(d.staleness(10), Some(6));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = mk_device(0, seed);
            d.local_train(3, 8, &OptimizerKind::Sgd { lr: 0.05 }, 0);
            middle_nn::params::flatten(&d.model)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn flat_cache_tracks_model_through_train_and_load() {
        let mut d = mk_device(4, 46);
        assert_eq!(d.flat(), flatten(&d.model).as_slice());
        d.local_train(2, 8, &OptimizerKind::Sgd { lr: 0.05 }, 0);
        let f = flatten(&d.model);
        assert_eq!(d.flat(), f.as_slice());
        assert_eq!(d.flat_norm_sq().to_bits(), dot_slices(&f, &f).to_bits());
        // Broadcast path: load a different flat vector.
        let other = vec![0.25f32; f.len()];
        let norm = dot_slices(&other, &other);
        d.load_flat(&other, norm);
        assert_eq!(d.flat(), other.as_slice());
        assert_eq!(flatten(&d.model), other);
        assert_eq!(d.flat_norm_sq().to_bits(), norm.to_bits());
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn direct_mutation_without_refresh_is_caught() {
        let mut d = mk_device(5, 47);
        d.invalidate_flat();
        d.flat();
    }
}
