//! A mobile device: local data, the carried local model, and local
//! training (paper Eqs. 1 and 5).

use middle_data::batch::random_batch;
use middle_data::Dataset;
use middle_nn::loss::per_sample_cross_entropy;
use middle_nn::{OptimizerKind, Sequential};
use middle_tensor::random::{derive_seed, rng};
use rand::rngs::StdRng;

/// One mobile device.
///
/// The device persistently carries its local model `w_m` between time
/// steps — the crux of MIDDLE: after moving to a new edge, this carried
/// model transports the previous edge's "knowledge".
pub struct Device {
    /// Stable device identifier (index into the simulation's device set).
    pub id: usize,
    /// The carried local model `w_m^t`.
    pub model: Sequential,
    /// Oort statistical utility from the most recent participation;
    /// `None` until the device first trains.
    pub oort_utility: Option<f32>,
    /// Time step of the most recent participation (staleness tracking).
    pub last_participation: Option<usize>,
    data: Dataset,
    rng: StdRng,
}

impl Device {
    /// Creates a device with its local dataset and initial model.
    pub fn new(id: usize, data: Dataset, initial_model: Sequential, seed: u64) -> Self {
        assert!(!data.is_empty(), "device {id} has no data");
        Device {
            id,
            model: initial_model,
            oort_utility: None,
            last_participation: None,
            data,
            rng: rng(derive_seed(seed, 0xD0_0000 + id as u64)),
        }
    }

    /// Number of local samples (`d_m`).
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The device's local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Runs `I` local SGD steps (Eq. 5) starting from `init`, replacing
    /// the carried model with the result, and refreshes the Oort
    /// statistical utility. Returns the final mini-batch training loss.
    pub fn local_train(
        &mut self,
        init: Sequential,
        local_steps: usize,
        batch_size: usize,
        optimizer: &OptimizerKind,
        time_step: usize,
    ) -> f32 {
        assert!(local_steps > 0, "need at least one local step");
        self.model = init;
        // Fresh optimizer per participation: momentum/Adam state cannot
        // meaningfully persist across model replacement by aggregation.
        let mut opt = optimizer.build();
        let bs = batch_size.min(self.data.len()).max(1);
        let mut loss = 0.0f32;
        for _ in 0..local_steps {
            let (x, y) = random_batch(&self.data, bs, &mut self.rng);
            loss = self.model.train_batch(&x, &y, opt.as_mut());
        }
        self.refresh_oort_utility();
        self.last_participation = Some(time_step);
        loss
    }

    /// Recomputes the Oort statistical utility
    /// `|B_m| · sqrt(mean(loss_i²))` over the device's local samples with
    /// the current carried model.
    pub fn refresh_oort_utility(&mut self) {
        let logits = self.model.forward(self.data.inputs(), false);
        let losses = per_sample_cross_entropy(&logits, self.data.labels());
        let mean_sq = losses.iter().map(|l| l * l).sum::<f32>() / losses.len() as f32;
        self.oort_utility = Some(self.data.len() as f32 * mean_sq.sqrt());
    }

    /// Steps since the device last participated (`None` if never).
    pub fn staleness(&self, now: usize) -> Option<usize> {
        self.last_participation.map(|t| now.saturating_sub(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_data::synthetic::{SyntheticSource, Task};
    use middle_nn::zoo;
    use middle_tensor::random::rng as seed_rng;

    fn mk_device(id: usize, seed: u64) -> Device {
        let src = SyntheticSource::new(Task::Mnist, 5);
        let data = src.generate_balanced(20, id as u64);
        let spec = Task::Mnist.spec();
        let model = zoo::logistic(&spec, &mut seed_rng(1));
        Device::new(id, data, model, seed)
    }

    #[test]
    fn local_training_reduces_loss() {
        let mut d = mk_device(0, 42);
        let init = d.model.clone();
        let (inputs, labels) = (d.data().inputs().clone(), d.data().labels().to_vec());
        let before = d.model.eval_loss(&inputs, &labels);
        let kind = OptimizerKind::Sgd { lr: 0.1 };
        d.local_train(init, 20, 10, &kind, 3);
        let after = d.model.eval_loss(&inputs, &labels);
        assert!(after < before, "{before} -> {after}");
        assert_eq!(d.last_participation, Some(3));
    }

    #[test]
    fn oort_utility_set_after_training() {
        let mut d = mk_device(1, 43);
        assert!(d.oort_utility.is_none());
        let init = d.model.clone();
        d.local_train(init, 1, 5, &OptimizerKind::Sgd { lr: 0.01 }, 0);
        let u = d.oort_utility.unwrap();
        assert!(u > 0.0 && u.is_finite());
    }

    #[test]
    fn oort_utility_falls_as_model_fits() {
        let mut d = mk_device(2, 44);
        let init = d.model.clone();
        d.local_train(init, 1, 10, &OptimizerKind::Sgd { lr: 0.05 }, 0);
        let early = d.oort_utility.unwrap();
        let carried = d.model.clone();
        d.local_train(carried, 40, 10, &OptimizerKind::Sgd { lr: 0.05 }, 1);
        let late = d.oort_utility.unwrap();
        assert!(late < early, "{early} -> {late}");
    }

    #[test]
    fn staleness_counts_from_last_participation() {
        let mut d = mk_device(3, 45);
        assert_eq!(d.staleness(10), None);
        let init = d.model.clone();
        d.local_train(init, 1, 5, &OptimizerKind::Sgd { lr: 0.01 }, 4);
        assert_eq!(d.staleness(10), Some(6));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = mk_device(0, seed);
            let init = d.model.clone();
            d.local_train(init, 3, 8, &OptimizerKind::Sgd { lr: 0.05 }, 0);
            middle_nn::params::flatten(&d.model)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
