//! Training algorithms behind a first-class policy API: MIDDLE, the
//! paper's §6.1.3 baselines, and the post-paper zoo (FedFly migration,
//! FedLECC cluster-guided selection), all expressed as a serde-nameable
//! [`AlgorithmConfig`] that resolves to an [`AlgorithmPolicy`] object
//! the simulation step loop drives through explicit hooks.
//!
//! | Algorithm | Selection | On-move device aggregation |
//! |---|---|---|
//! | MIDDLE | top-K of `−U(w_c, Δw_m)` (Eq. 12) | similarity-weighted (Eq. 9) |
//! | OORT | top-K Oort statistical utility | none (download edge model) |
//! | FedMes | random | plain average of edge + local |
//! | Greedy | top-K Oort statistical utility | keep previous local model |
//! | Ensemble | top-K Oort statistical utility | plain average |
//! | HierFAVG ("General") | random | none |
//! | FedFly | random | migrate in-flight update edge-to-edge |
//! | FedLECC | loss-guided cluster spread | none (download edge model) |
//! | Random | random | similarity-weighted (Eq. 9) |
//!
//! ## The policy API
//!
//! [`AlgorithmConfig`] is plain data (what rides [`crate::SimConfig`],
//! sweeps and JSON); [`AlgorithmConfig::resolve`] turns it into a boxed
//! [`AlgorithmPolicy`] carrying any cross-round state. The simulation
//! calls the hooks at fixed points of Algorithm 1, identically in the
//! fast and reference step paths:
//!
//! 1. [`AlgorithmPolicy::selection`] + [`AlgorithmPolicy::cluster_of`]
//!    — candidate scoring (feeds [`crate::selection`]);
//! 2. [`AlgorithmPolicy::on_move`] — what a device that changed edges
//!    does with its carried model (blend per an [`OnDevicePolicy`], or
//!    migrate it edge-to-edge, FedFly-style);
//! 3. [`AlgorithmPolicy::observe_participants`] — after local training,
//!    before edge aggregation (cluster bookkeeping);
//! 4. [`AlgorithmPolicy::after_edge_aggregate`] — per edge, after its
//!    cohort's updates are folded in (marks updates in-flight);
//! 5. [`AlgorithmPolicy::after_cloud_sync`] — after a cloud round,
//!    with the WAN reachability mask (clears delivered in-flight state).
//!
//! MIDDLE is the oracle: the composed policy resolved from
//! [`Algorithm::middle`] must keep the default-config run
//! bitwise-identical to the pre-policy-API implementation (pinned by
//! `tests/hotpath_equiv.rs` FNV fingerprints).

use serde::{Deserialize, Serialize};

/// In-edge device selection policy (paper §4.3 and baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Uniform random choice of `K` candidates.
    Random,
    /// MIDDLE (Eq. 12): select the `K` devices whose accumulated update
    /// `Δw_m = w_m − w_c` is *least* similar to the cloud model —
    /// `TOPK(−U(w_c, Δw_m))` — so under-represented data is preferred.
    LeastSimilarUpdate,
    /// Ablation: the sign-flipped variant `TOPK(+U(w_c, Δw_m))`.
    MostSimilarUpdate,
    /// Oort's statistical utility `|B_m| · sqrt(mean(loss²))` from each
    /// device's most recent participation; devices with no history get
    /// infinite utility (Oort's exploration of fresh clients).
    OortUtility,
    /// FedLECC-style loss-guided cluster spread (arXiv:2603.08911):
    /// devices are bucketed into loss-ranked clusters after each round
    /// they participate in, and selection round-robins over the
    /// clusters taking each cluster's highest-utility candidate, so
    /// every loss stratum stays represented.
    ClusterGuided {
        /// Number of loss-ranked clusters (≥ 1).
        clusters: usize,
    },
}

/// On-device model aggregation policy (paper §4.2 and baselines),
/// applied only to devices that moved across edges since the previous
/// step (Algorithm 1, line 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OnDevicePolicy {
    /// Classical HFL: start local training from the downloaded edge
    /// model.
    EdgeModel,
    /// MIDDLE (Eq. 9): blend edge and carried local model with the
    /// similarity-utility weights `1/(1+U)` and `U/(1+U)`.
    SimilarityWeighted,
    /// Ablation of Eq. 9 without the `max(·, 0)` clipping: raw cosine is
    /// clamped into `[0, 1]` only after the weight computation would
    /// allow negative blending, i.e. weights use `(1+c)/2`-style signed
    /// similarity. Kept to measure the value of clipping.
    UnclippedSimilarity,
    /// FedMes / Ensemble: plain average of edge and local model.
    Average,
    /// Greedy: keep the carried local model, ignore the edge model.
    KeepLocal,
    /// Theory (§5): fixed blend `ŵ = (1−α)·w_m + α·w_n`.
    FixedAlpha {
        /// Weight on the *edge* model.
        alpha: f32,
    },
}

/// A complete, serde-nameable algorithm: what rides [`crate::SimConfig`]
/// and sweep scenario labels, resolved into a stateful policy object by
/// [`AlgorithmConfig::resolve`].
///
/// The historical name [`Algorithm`] remains as an alias; every
/// constructor below builds a zoo member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmConfig {
    /// Display name (baseline names follow the paper).
    pub name: String,
    /// In-edge device selection.
    pub selection: SelectionPolicy,
    /// On-device aggregation for moved devices.
    pub on_device: OnDevicePolicy,
    /// FedFly-style migration (arXiv:2111.01516): when a device moves
    /// while its last uploaded update is still in flight (folded into
    /// an edge model the cloud has not yet absorbed), the update is
    /// handed off edge-to-edge and the device keeps its carried model
    /// instead of re-blending; `on_device` applies only to moves with
    /// no in-flight update. Off (the paper's behaviour) by default and
    /// skipped in JSON when off, so existing configs and their digests
    /// are unchanged.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub migrate_in_flight: bool,
}

/// Historical alias: the config type was simply called `Algorithm`
/// before the policy API existed.
pub type Algorithm = AlgorithmConfig;

impl AlgorithmConfig {
    /// Builds a custom algorithm from its two components.
    pub fn custom(
        name: impl Into<String>,
        selection: SelectionPolicy,
        on_device: OnDevicePolicy,
    ) -> Algorithm {
        Algorithm {
            name: name.into(),
            selection,
            on_device,
            migrate_in_flight: false,
        }
    }

    /// MIDDLE (the paper's contribution).
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn middle() -> Algorithm {
        Algorithm::custom(
            "MIDDLE",
            SelectionPolicy::LeastSimilarUpdate,
            OnDevicePolicy::SimilarityWeighted,
        )
    }

    /// OORT baseline [Lai et al., OSDI'21] adapted per §6.1.3.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::oort());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn oort() -> Algorithm {
        Algorithm::custom(
            "OORT",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::EdgeModel,
        )
    }

    /// FedMes baseline [Han et al., JSAC'21] adapted per §6.1.3.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::fedmes());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn fedmes() -> Algorithm {
        Algorithm::custom("FedMes", SelectionPolicy::Random, OnDevicePolicy::Average)
    }

    /// Greedy baseline (§6.1.3): keep the carried model, Oort selection.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::greedy());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn greedy() -> Algorithm {
        Algorithm::custom(
            "Greedy",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::KeepLocal,
        )
    }

    /// Ensemble baseline (§6.1.3): OORT selection + FedMes aggregation.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::ensemble());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn ensemble() -> Algorithm {
        Algorithm::custom(
            "Ensemble",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::Average,
        )
    }

    /// Classical hierarchical FedAvg ("General" in §2) — random
    /// selection, no on-device aggregation.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::hierfavg());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn hierfavg() -> Algorithm {
        Algorithm::custom(
            "HierFAVG",
            SelectionPolicy::Random,
            OnDevicePolicy::EdgeModel,
        )
    }

    /// FedFly-style model migration (arXiv:2111.01516): random
    /// selection, and a device that moves with an in-flight update has
    /// the update handed off edge-to-edge (charged to
    /// [`crate::CommStats::edge_to_edge`]) instead of re-blended; moves
    /// with nothing in flight download the destination edge model. The
    /// in-flight set rides [`crate::SimCheckpoint`].
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::fedfly());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn fedfly() -> Algorithm {
        let mut a = Algorithm::custom("FedFly", SelectionPolicy::Random, OnDevicePolicy::EdgeModel);
        a.migrate_in_flight = true;
        a
    }

    /// FedLECC-style cluster-/loss-guided selection (arXiv:2603.08911):
    /// participants are re-bucketed into loss-ranked clusters each
    /// round, and selection takes each cluster's best candidate
    /// round-robin so every loss stratum stays represented. The cluster
    /// assignment rides [`crate::SimCheckpoint`].
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::fedlecc());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn fedlecc() -> Algorithm {
        Algorithm::custom(
            "FedLECC",
            SelectionPolicy::ClusterGuided { clusters: 3 },
            OnDevicePolicy::EdgeModel,
        )
    }

    /// Random-selection control: ablates MIDDLE's Eq. 12 selection while
    /// keeping its Eq. 9 on-device blend, isolating how much of
    /// MIDDLE's gain comes from *which* devices are picked.
    ///
    /// ```
    /// use middle_core::{Algorithm, SimConfig, SimulationBuilder};
    /// use middle_data::Task;
    ///
    /// let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::random_control());
    /// cfg.steps = 2;
    /// let record = SimulationBuilder::new(cfg).build().expect("valid config").run();
    /// assert!(record.final_accuracy() >= 0.0);
    /// ```
    pub fn random_control() -> Algorithm {
        Algorithm::custom(
            "Random",
            SelectionPolicy::Random,
            OnDevicePolicy::SimilarityWeighted,
        )
    }

    /// The five algorithms plotted in Figures 6–7, in the paper's order.
    pub fn figure6() -> [Algorithm; 5] {
        [
            Algorithm::middle(),
            Algorithm::oort(),
            Algorithm::fedmes(),
            Algorithm::greedy(),
            Algorithm::ensemble(),
        ]
    }

    /// Every named algorithm in the zoo: the Figure 6 five plus
    /// HierFAVG, FedFly, FedLECC and the random control.
    pub fn zoo() -> Vec<Algorithm> {
        vec![
            Algorithm::middle(),
            Algorithm::oort(),
            Algorithm::fedmes(),
            Algorithm::greedy(),
            Algorithm::ensemble(),
            Algorithm::hierfavg(),
            Algorithm::fedfly(),
            Algorithm::fedlecc(),
            Algorithm::random_control(),
        ]
    }

    /// Looks an algorithm up by its display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Algorithm> {
        let lower = name.to_ascii_lowercase();
        Algorithm::zoo()
            .into_iter()
            .find(|a| a.name.to_ascii_lowercase() == lower)
    }

    /// Resolves the config into the policy object the step loop drives.
    ///
    /// Stateless combinations resolve to a composed policy (exactly the
    /// pre-policy-API behaviour); `migrate_in_flight` resolves to the
    /// FedFly policy and `ClusterGuided` selection to the FedLECC
    /// policy, each sized for `num_devices`.
    pub fn resolve(&self, num_devices: usize) -> Box<dyn AlgorithmPolicy> {
        if self.migrate_in_flight {
            Box::new(FedFlyPolicy::new(
                self.selection,
                self.on_device,
                num_devices,
            ))
        } else if let SelectionPolicy::ClusterGuided { clusters } = self.selection {
            Box::new(FedLeccPolicy::new(
                clusters,
                self.selection,
                self.on_device,
                num_devices,
            ))
        } else {
            Box::new(ComposedPolicy {
                selection: self.selection,
                on_device: self.on_device,
            })
        }
    }
}

/// What a moved device does with its carried model (the
/// [`AlgorithmPolicy::on_move`] verdict).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveAction {
    /// Blend the carried model with the destination edge model per the
    /// given policy ([`OnDevicePolicy::KeepLocal`] blends nothing and
    /// charges no download — the pre-policy-API behaviour).
    Blend(OnDevicePolicy),
    /// FedFly hand-off: the device keeps its carried model untouched;
    /// the source edge forwards its in-flight update to the destination
    /// edge over the edge-to-edge link (no device download).
    Migrate,
}

/// Serializable cross-round policy state; rides
/// [`crate::SimCheckpoint`] so checkpoint→resume reproduces stateful
/// algorithms bitwise. Stateless policies have none.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AlgorithmState {
    /// FedFly: devices whose last uploaded update is still in flight.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub in_flight: Vec<bool>,
    /// FedLECC: per-device loss-ranked cluster assignment.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub clusters: Vec<u32>,
}

/// The per-step hooks an algorithm exposes to the simulation loop.
///
/// The fast and reference step paths call every hook at the same points
/// with the same arguments, so a policy's behaviour (and state
/// evolution) is identical in both — the per-algorithm
/// fast == reference gates in `tests/algo_zoo.rs` hold by construction.
/// Hooks must be deterministic: any randomness comes from the
/// simulation's own RNG streams via the selection policy.
pub trait AlgorithmPolicy: Send + Sync {
    /// The selection policy driving candidate scoring this step.
    fn selection(&self) -> SelectionPolicy;

    /// Called for each participating device that changed edges since
    /// the previous step (`from != to`), before local training.
    fn on_move(&mut self, m: usize, from_edge: usize, to_edge: usize) -> MoveAction;

    /// Loss-ranked cluster of device `m` (only meaningful under
    /// [`SelectionPolicy::ClusterGuided`]; everything else is one
    /// cluster).
    fn cluster_of(&self, m: usize) -> u32 {
        let _ = m;
        0
    }

    /// Called after local training with this step's participant set
    /// (sorted) and an Oort-utility probe (`None` = never participated).
    fn observe_participants(
        &mut self,
        participants: &[usize],
        utility: &dyn Fn(usize) -> Option<f32>,
    ) {
        let _ = (participants, utility);
    }

    /// Called per edge after its cohort's updates are aggregated into
    /// the edge model (the cohort is the devices actually delivered).
    fn after_edge_aggregate(&mut self, edge: usize, cohort: &[usize]) {
        let _ = (edge, cohort);
    }

    /// Called after a cloud sync round. `wan_up` is the per-edge WAN
    /// reachability mask (`None` = every edge reached); `edge_of` maps
    /// each device to its current edge.
    fn after_cloud_sync(&mut self, wan_up: Option<&[bool]>, edge_of: &[usize]) {
        let _ = (wan_up, edge_of);
    }

    /// Cross-round state to ride the checkpoint (`None` = stateless).
    fn state(&self) -> Option<AlgorithmState> {
        None
    }

    /// Restores state captured by [`AlgorithmPolicy::state`].
    ///
    /// # Errors
    /// A message describing the mismatch when `state` does not fit this
    /// policy (wrong field populated, wrong device count).
    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), String> {
        let _ = state;
        Err("algorithm carries no restorable state".into())
    }
}

/// Stateless (selection, on-device) pair — every pre-policy-API
/// algorithm, including MIDDLE. Behaviour is bit-for-bit the historical
/// step loop's: `on_move` always blends per the configured policy.
struct ComposedPolicy {
    selection: SelectionPolicy,
    on_device: OnDevicePolicy,
}

impl AlgorithmPolicy for ComposedPolicy {
    fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    fn on_move(&mut self, _m: usize, _from_edge: usize, _to_edge: usize) -> MoveAction {
        MoveAction::Blend(self.on_device)
    }
}

/// FedFly migration (arXiv:2111.01516). A device's update is in flight
/// from the moment an edge folds it in until a cloud sync reaches that
/// device's edge; a move during that window migrates the update
/// edge-to-edge instead of re-blending the device model.
struct FedFlyPolicy {
    selection: SelectionPolicy,
    on_device: OnDevicePolicy,
    in_flight: Vec<bool>,
}

impl FedFlyPolicy {
    fn new(selection: SelectionPolicy, on_device: OnDevicePolicy, num_devices: usize) -> Self {
        FedFlyPolicy {
            selection,
            on_device,
            in_flight: vec![false; num_devices],
        }
    }
}

impl AlgorithmPolicy for FedFlyPolicy {
    fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    fn on_move(&mut self, m: usize, _from_edge: usize, _to_edge: usize) -> MoveAction {
        if self.in_flight[m] {
            MoveAction::Migrate
        } else {
            MoveAction::Blend(self.on_device)
        }
    }

    fn after_edge_aggregate(&mut self, _edge: usize, cohort: &[usize]) {
        for &m in cohort {
            self.in_flight[m] = true;
        }
    }

    fn after_cloud_sync(&mut self, wan_up: Option<&[bool]>, edge_of: &[usize]) {
        for (m, flag) in self.in_flight.iter_mut().enumerate() {
            if wan_up.is_none_or(|up| up[edge_of[m]]) {
                *flag = false;
            }
        }
    }

    fn state(&self) -> Option<AlgorithmState> {
        Some(AlgorithmState {
            in_flight: self.in_flight.clone(),
            clusters: Vec::new(),
        })
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), String> {
        if !state.clusters.is_empty() {
            return Err("checkpoint carries cluster state but the algorithm is FedFly".into());
        }
        if state.in_flight.len() != self.in_flight.len() {
            return Err(format!(
                "checkpoint in-flight set covers {} devices, simulation has {}",
                state.in_flight.len(),
                self.in_flight.len()
            ));
        }
        self.in_flight.copy_from_slice(&state.in_flight);
        Ok(())
    }
}

/// FedLECC-style cluster-/loss-guided selection (arXiv:2603.08911).
///
/// After each round, participants are ranked by Oort statistical
/// utility (bitwise-identical between the fast and reference paths —
/// similarity scores are not, which is why clustering must key off
/// utility) and bucketed into `clusters` equal strata; selection then
/// round-robins over the strata (see
/// [`crate::selection::select_devices_scored`]).
struct FedLeccPolicy {
    clusters: usize,
    selection: SelectionPolicy,
    on_device: OnDevicePolicy,
    assignment: Vec<u32>,
    /// Scratch for the per-round ranking, kept to avoid re-allocating.
    ranked: Vec<(f32, usize)>,
}

impl FedLeccPolicy {
    fn new(
        clusters: usize,
        selection: SelectionPolicy,
        on_device: OnDevicePolicy,
        num_devices: usize,
    ) -> Self {
        FedLeccPolicy {
            clusters: clusters.max(1),
            selection,
            on_device,
            assignment: vec![0; num_devices],
            ranked: Vec::new(),
        }
    }
}

impl AlgorithmPolicy for FedLeccPolicy {
    fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    fn on_move(&mut self, _m: usize, _from_edge: usize, _to_edge: usize) -> MoveAction {
        MoveAction::Blend(self.on_device)
    }

    fn cluster_of(&self, m: usize) -> u32 {
        self.assignment[m]
    }

    fn observe_participants(
        &mut self,
        participants: &[usize],
        utility: &dyn Fn(usize) -> Option<f32>,
    ) {
        if participants.is_empty() {
            return;
        }
        self.ranked.clear();
        self.ranked.extend(
            participants
                .iter()
                .map(|&m| (utility(m).unwrap_or(f32::INFINITY), m)),
        );
        // Highest utility (loss) first; device id breaks exact ties so
        // the ranking is a pure function of (utility, id) in both step
        // paths.
        self.ranked
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let n = self.ranked.len();
        for (i, &(_, m)) in self.ranked.iter().enumerate() {
            self.assignment[m] = ((i * self.clusters) / n) as u32;
        }
    }

    fn state(&self) -> Option<AlgorithmState> {
        Some(AlgorithmState {
            in_flight: Vec::new(),
            clusters: self.assignment.clone(),
        })
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), String> {
        if !state.in_flight.is_empty() {
            return Err("checkpoint carries in-flight state but the algorithm is FedLECC".into());
        }
        if state.clusters.len() != self.assignment.len() {
            return Err(format!(
                "checkpoint cluster assignment covers {} devices, simulation has {}",
                state.clusters.len(),
                self.assignment.len()
            ));
        }
        self.assignment.copy_from_slice(&state.clusters);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middle_components_match_paper() {
        let m = Algorithm::middle();
        assert_eq!(m.selection, SelectionPolicy::LeastSimilarUpdate);
        assert_eq!(m.on_device, OnDevicePolicy::SimilarityWeighted);
        assert!(!m.migrate_in_flight);
    }

    #[test]
    fn baselines_match_section_6_1_3() {
        assert_eq!(Algorithm::oort().on_device, OnDevicePolicy::EdgeModel);
        assert_eq!(Algorithm::fedmes().selection, SelectionPolicy::Random);
        assert_eq!(Algorithm::fedmes().on_device, OnDevicePolicy::Average);
        assert_eq!(Algorithm::greedy().on_device, OnDevicePolicy::KeepLocal);
        assert_eq!(Algorithm::greedy().selection, SelectionPolicy::OortUtility);
        assert_eq!(
            Algorithm::ensemble().selection,
            SelectionPolicy::OortUtility
        );
        assert_eq!(Algorithm::ensemble().on_device, OnDevicePolicy::Average);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(Algorithm::by_name("middle"), Some(Algorithm::middle()));
        assert_eq!(Algorithm::by_name("FEDMES"), Some(Algorithm::fedmes()));
        assert_eq!(Algorithm::by_name("fedfly"), Some(Algorithm::fedfly()));
        assert_eq!(Algorithm::by_name("FedLECC"), Some(Algorithm::fedlecc()));
        assert_eq!(
            Algorithm::by_name("random"),
            Some(Algorithm::random_control())
        );
        assert_eq!(Algorithm::by_name("nope"), None);
    }

    #[test]
    fn figure6_has_five_distinct_algorithms() {
        let algos = Algorithm::figure6();
        let names: Vec<&str> = algos.iter().map(|a| a.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn zoo_names_are_distinct_and_resolvable() {
        let zoo = Algorithm::zoo();
        assert!(zoo.len() >= 9);
        let mut names: Vec<String> = zoo.iter().map(|a| a.name.to_ascii_lowercase()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), zoo.len());
        for a in &zoo {
            assert_eq!(Algorithm::by_name(&a.name), Some(a.clone()));
            let _ = a.resolve(8);
        }
    }

    #[test]
    fn legacy_json_without_migration_flag_still_parses() {
        // The exact shape `Algorithm` serialized to before the policy
        // API existed — must keep parsing, and must re-serialize
        // byte-identically so config digests are stable.
        let legacy = r#"{"name":"MIDDLE","selection":"LeastSimilarUpdate","on_device":"SimilarityWeighted"}"#;
        let parsed: AlgorithmConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, Algorithm::middle());
        assert_eq!(serde_json::to_string(&parsed).unwrap(), legacy);
    }

    #[test]
    fn fedfly_policy_tracks_in_flight_updates() {
        let cfg = Algorithm::fedfly();
        assert!(cfg.migrate_in_flight);
        let mut p = cfg.resolve(4);
        // Nothing in flight yet: a move blends per on_device.
        assert_eq!(
            p.on_move(1, 0, 1),
            MoveAction::Blend(OnDevicePolicy::EdgeModel)
        );
        // Edge 0 aggregates device 1's update: now in flight.
        p.after_edge_aggregate(0, &[1]);
        assert_eq!(p.on_move(1, 0, 1), MoveAction::Migrate);
        // A cloud sync that misses edge 1 keeps device 1 in flight.
        let edge_of = [0, 1, 0, 1];
        p.after_cloud_sync(Some(&[true, false]), &edge_of);
        assert_eq!(p.on_move(1, 1, 0), MoveAction::Migrate);
        // A full sync clears it.
        p.after_cloud_sync(None, &edge_of);
        assert_eq!(
            p.on_move(1, 0, 1),
            MoveAction::Blend(OnDevicePolicy::EdgeModel)
        );
    }

    #[test]
    fn fedfly_state_round_trips_and_rejects_mismatches() {
        let mut p = Algorithm::fedfly().resolve(3);
        p.after_edge_aggregate(0, &[2]);
        let state = p.state().unwrap();
        assert_eq!(state.in_flight, vec![false, false, true]);
        let mut fresh = Algorithm::fedfly().resolve(3);
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.state().unwrap(), state);
        assert!(Algorithm::fedfly()
            .resolve(4)
            .restore_state(&state)
            .is_err());
        assert!(Algorithm::fedlecc()
            .resolve(3)
            .restore_state(&state)
            .is_err());
    }

    #[test]
    fn fedlecc_clusters_spread_by_utility_rank() {
        let mut p = Algorithm::fedlecc().resolve(6);
        let util = |m: usize| Some([6.0f32, 5.0, 4.0, 3.0, 2.0, 1.0][m]);
        p.observe_participants(&[0, 1, 2, 3, 4, 5], &util);
        let clusters: Vec<u32> = (0..6).map(|m| p.cluster_of(m)).collect();
        assert_eq!(clusters, vec![0, 0, 1, 1, 2, 2]);
        // Fresh (never-participated) devices rank first.
        let mut q = Algorithm::fedlecc().resolve(3);
        q.observe_participants(&[0, 1, 2], &|m| if m == 2 { None } else { Some(1.0) });
        assert_eq!(q.cluster_of(2), 0);
        let state = q.state().unwrap();
        assert!(state.in_flight.is_empty());
        let mut fresh = Algorithm::fedlecc().resolve(3);
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.state().unwrap(), state);
    }

    #[test]
    fn stateless_policies_have_no_state() {
        for cfg in Algorithm::figure6() {
            let p = cfg.resolve(4);
            assert!(p.state().is_none());
        }
        assert!(Algorithm::middle()
            .resolve(4)
            .restore_state(&AlgorithmState::default())
            .is_err());
    }
}
