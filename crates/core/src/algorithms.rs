//! Training algorithms: MIDDLE and the paper's four baselines (§6.1.3),
//! decomposed into an in-edge device-selection policy and an on-device
//! aggregation policy.
//!
//! | Algorithm | Selection | On-device aggregation |
//! |---|---|---|
//! | MIDDLE | top-K of `−U(w_c, Δw_m)` (Eq. 12) | similarity-weighted (Eq. 9) |
//! | OORT | top-K Oort statistical utility | none (download edge model) |
//! | FedMes | random | plain average of edge + local |
//! | Greedy | top-K Oort statistical utility | keep previous local model |
//! | Ensemble | top-K Oort statistical utility | plain average |
//! | HierFAVG ("General") | random | none |

use serde::{Deserialize, Serialize};

/// In-edge device selection policy (paper §4.3 and baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Uniform random choice of `K` candidates.
    Random,
    /// MIDDLE (Eq. 12): select the `K` devices whose accumulated update
    /// `Δw_m = w_m − w_c` is *least* similar to the cloud model —
    /// `TOPK(−U(w_c, Δw_m))` — so under-represented data is preferred.
    LeastSimilarUpdate,
    /// Ablation: the sign-flipped variant `TOPK(+U(w_c, Δw_m))`.
    MostSimilarUpdate,
    /// Oort's statistical utility `|B_m| · sqrt(mean(loss²))` from each
    /// device's most recent participation; devices with no history get
    /// infinite utility (Oort's exploration of fresh clients).
    OortUtility,
}

/// On-device model aggregation policy (paper §4.2 and baselines),
/// applied only to devices that moved across edges since the previous
/// step (Algorithm 1, line 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OnDevicePolicy {
    /// Classical HFL: start local training from the downloaded edge
    /// model.
    EdgeModel,
    /// MIDDLE (Eq. 9): blend edge and carried local model with the
    /// similarity-utility weights `1/(1+U)` and `U/(1+U)`.
    SimilarityWeighted,
    /// Ablation of Eq. 9 without the `max(·, 0)` clipping: raw cosine is
    /// clamped into `[0, 1]` only after the weight computation would
    /// allow negative blending, i.e. weights use `(1+c)/2`-style signed
    /// similarity. Kept to measure the value of clipping.
    UnclippedSimilarity,
    /// FedMes / Ensemble: plain average of edge and local model.
    Average,
    /// Greedy: keep the carried local model, ignore the edge model.
    KeepLocal,
    /// Theory (§5): fixed blend `ŵ = (1−α)·w_m + α·w_n`.
    FixedAlpha {
        /// Weight on the *edge* model.
        alpha: f32,
    },
}

/// A complete algorithm = selection policy + on-device policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algorithm {
    /// Display name (baseline names follow the paper).
    pub name: String,
    /// In-edge device selection.
    pub selection: SelectionPolicy,
    /// On-device aggregation for moved devices.
    pub on_device: OnDevicePolicy,
}

impl Algorithm {
    /// Builds a custom algorithm from its two components.
    pub fn custom(
        name: impl Into<String>,
        selection: SelectionPolicy,
        on_device: OnDevicePolicy,
    ) -> Algorithm {
        Algorithm {
            name: name.into(),
            selection,
            on_device,
        }
    }

    /// MIDDLE (the paper's contribution).
    pub fn middle() -> Algorithm {
        Algorithm::custom(
            "MIDDLE",
            SelectionPolicy::LeastSimilarUpdate,
            OnDevicePolicy::SimilarityWeighted,
        )
    }

    /// OORT baseline [Lai et al., OSDI'21] adapted per §6.1.3.
    pub fn oort() -> Algorithm {
        Algorithm::custom(
            "OORT",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::EdgeModel,
        )
    }

    /// FedMes baseline [Han et al., JSAC'21] adapted per §6.1.3.
    pub fn fedmes() -> Algorithm {
        Algorithm::custom("FedMes", SelectionPolicy::Random, OnDevicePolicy::Average)
    }

    /// Greedy baseline (§6.1.3): keep the carried model, Oort selection.
    pub fn greedy() -> Algorithm {
        Algorithm::custom(
            "Greedy",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::KeepLocal,
        )
    }

    /// Ensemble baseline (§6.1.3): OORT selection + FedMes aggregation.
    pub fn ensemble() -> Algorithm {
        Algorithm::custom(
            "Ensemble",
            SelectionPolicy::OortUtility,
            OnDevicePolicy::Average,
        )
    }

    /// Classical hierarchical FedAvg ("General" in §2) — random
    /// selection, no on-device aggregation.
    pub fn hierfavg() -> Algorithm {
        Algorithm::custom(
            "HierFAVG",
            SelectionPolicy::Random,
            OnDevicePolicy::EdgeModel,
        )
    }

    /// The five algorithms plotted in Figures 6–7, in the paper's order.
    pub fn figure6() -> [Algorithm; 5] {
        [
            Algorithm::middle(),
            Algorithm::oort(),
            Algorithm::fedmes(),
            Algorithm::greedy(),
            Algorithm::ensemble(),
        ]
    }

    /// Looks an algorithm up by its display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Algorithm> {
        let lower = name.to_ascii_lowercase();
        [
            Algorithm::middle(),
            Algorithm::oort(),
            Algorithm::fedmes(),
            Algorithm::greedy(),
            Algorithm::ensemble(),
            Algorithm::hierfavg(),
        ]
        .into_iter()
        .find(|a| a.name.to_ascii_lowercase() == lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middle_components_match_paper() {
        let m = Algorithm::middle();
        assert_eq!(m.selection, SelectionPolicy::LeastSimilarUpdate);
        assert_eq!(m.on_device, OnDevicePolicy::SimilarityWeighted);
    }

    #[test]
    fn baselines_match_section_6_1_3() {
        assert_eq!(Algorithm::oort().on_device, OnDevicePolicy::EdgeModel);
        assert_eq!(Algorithm::fedmes().selection, SelectionPolicy::Random);
        assert_eq!(Algorithm::fedmes().on_device, OnDevicePolicy::Average);
        assert_eq!(Algorithm::greedy().on_device, OnDevicePolicy::KeepLocal);
        assert_eq!(Algorithm::greedy().selection, SelectionPolicy::OortUtility);
        assert_eq!(
            Algorithm::ensemble().selection,
            SelectionPolicy::OortUtility
        );
        assert_eq!(Algorithm::ensemble().on_device, OnDevicePolicy::Average);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(Algorithm::by_name("middle"), Some(Algorithm::middle()));
        assert_eq!(Algorithm::by_name("FEDMES"), Some(Algorithm::fedmes()));
        assert_eq!(Algorithm::by_name("nope"), None);
    }

    #[test]
    fn figure6_has_five_distinct_algorithms() {
        let algos = Algorithm::figure6();
        let names: Vec<&str> = algos.iter().map(|a| a.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(dedup.len(), 5);
    }
}
