//! On-device model aggregation (paper §4.2, Eq. 9, plus baselines) and
//! the edge/cloud FedAvg aggregations (Eqs. 6–7).
//!
//! Each aggregation exists in two forms: the original allocating
//! functions returning fresh models (kept as the numerical oracle and
//! used by the reference step), and `_into` variants built on the
//! in-place primitives in [`middle_nn::params`] that write directly into
//! an existing model. The `_into` forms are element-for-element
//! identical to their references: same weight normalisation, same
//! accumulation order.

use crate::algorithms::OnDevicePolicy;
use crate::device::Device;
use crate::similarity::{
    aggregation_weights, raw_cosine, raw_cosine_cached, similarity_utility,
    similarity_utility_cached,
};
use middle_nn::params::{
    axpy, axpy2, blend, blend_into, flatten, flatten_into, unflatten, weighted_average, zero_params,
};
use middle_nn::Sequential;

/// Computes the new initial local model `ŵ_m^t` for a device that just
/// moved into an edge (Algorithm 1, line 5).
///
/// * `edge_model` — the downloaded current edge model `w_n^t`;
/// * `local_model` — the carried model `w_m^t` inherited from the
///   previous edge.
pub fn on_device_init(
    policy: OnDevicePolicy,
    edge_model: &Sequential,
    local_model: &Sequential,
) -> Sequential {
    match policy {
        OnDevicePolicy::EdgeModel => edge_model.clone(),
        OnDevicePolicy::KeepLocal => local_model.clone(),
        OnDevicePolicy::Average => blend(edge_model, local_model, 0.5),
        OnDevicePolicy::FixedAlpha { alpha } => {
            assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
            blend(edge_model, local_model, alpha)
        }
        OnDevicePolicy::SimilarityWeighted => {
            let u = similarity_utility(&flatten(local_model), &flatten(edge_model));
            let (edge_w, _local_w) = aggregation_weights(u);
            blend(edge_model, local_model, edge_w)
        }
        OnDevicePolicy::UnclippedSimilarity => {
            // Ablation: use the raw cosine in the Eq. 9 weights. The raw
            // value can be negative; we clamp at −0.5 so the 1/(1+c)
            // weight stays bounded, which still permits the noisy
            // extrapolation the clipping of Eq. 8 is designed to prevent.
            let c = raw_cosine(&flatten(local_model), &flatten(edge_model)).max(-0.5);
            let edge_w = (1.0 / (1.0 + c)).min(2.0);
            let local_w = 1.0 - edge_w;
            let fe = flatten(edge_model);
            let fl = flatten(local_model);
            let mixed: Vec<f32> = fe
                .iter()
                .zip(&fl)
                .map(|(&e, &l)| edge_w * e + local_w * l)
                .collect();
            let mut out = edge_model.clone();
            middle_nn::params::unflatten(&mut out, &mixed);
            out
        }
    }
}

/// In-place form of [`on_device_init`]: rewrites the device's carried
/// model into `ŵ_m^t` directly, using the device's and edge's cached
/// flat views for the similarity so no per-device flatten or model
/// allocation happens.
///
/// The device's flat cache is left *stale* for every policy that changes
/// the model (all but `KeepLocal`): in the simulation step each
/// initialised device immediately trains, and training refreshes the
/// cache. Callers that need the flat view before a train must call
/// [`Device::refresh_flat`] themselves.
pub fn on_device_init_into(
    policy: OnDevicePolicy,
    device: &mut Device,
    edge_model: &Sequential,
    edge_flat: &[f32],
    edge_norm_sq: f32,
) {
    match policy {
        OnDevicePolicy::EdgeModel => device.load_flat(edge_flat, edge_norm_sq),
        OnDevicePolicy::KeepLocal => {}
        OnDevicePolicy::Average => {
            blend_into(&mut device.model, edge_model, 0.5);
            device.invalidate_flat();
        }
        OnDevicePolicy::FixedAlpha { alpha } => {
            assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
            blend_into(&mut device.model, edge_model, alpha);
            device.invalidate_flat();
        }
        OnDevicePolicy::SimilarityWeighted => {
            let u = similarity_utility_cached(
                device.flat(),
                device.flat_norm_sq(),
                edge_flat,
                edge_norm_sq,
            );
            let (edge_w, _local_w) = aggregation_weights(u);
            blend_into(&mut device.model, edge_model, edge_w);
            device.invalidate_flat();
        }
        OnDevicePolicy::UnclippedSimilarity => {
            // Ablation: use the raw cosine in the Eq. 9 weights. The raw
            // value can be negative; we clamp at −0.5 so the 1/(1+c)
            // weight stays bounded, which still permits the noisy
            // extrapolation the clipping of Eq. 8 is designed to prevent.
            let c = raw_cosine_cached(
                device.flat(),
                device.flat_norm_sq(),
                edge_flat,
                edge_norm_sq,
            )
            .max(-0.5);
            let edge_w = (1.0 / (1.0 + c)).min(2.0);
            let local_w = 1.0 - edge_w;
            for (d, e) in device
                .model
                .params_mut()
                .into_iter()
                .zip(edge_model.params())
            {
                for (dv, &ev) in d.value.data_mut().iter_mut().zip(e.value.data()) {
                    *dv = edge_w * ev + local_w * *dv;
                }
            }
            device.invalidate_flat();
        }
    }
}

/// Edge aggregation (Eq. 6): FedAvg of uploaded local models, weighted by
/// per-device sample counts `d_m`.
pub fn edge_aggregate(models: &[&Sequential], sample_counts: &[usize]) -> Sequential {
    let weights: Vec<f32> = sample_counts.iter().map(|&d| d as f32).collect();
    weighted_average(models, &weights)
}

/// Cloud aggregation (Eq. 7): FedAvg of edge models weighted by the
/// participating-sample totals `d̂_n` accumulated over the sync window.
/// Edges whose window saw no participation get weight zero unless all
/// are zero, in which case a plain average is used.
///
/// Window totals are `f64`: they accumulate `usize` sample counts over
/// a whole sync window, and an `f32` accumulator silently loses integer
/// precision past 2^24 participating samples. The weights are
/// normalised in `f64` and cast to `f32` only at the final
/// per-model-weight boundary, the same boundary [`cloud_aggregate_into`]
/// casts at, so the two stay bit-identical.
pub fn cloud_aggregate(edge_models: &[&Sequential], window_samples: &[f64]) -> Sequential {
    assert_eq!(edge_models.len(), window_samples.len(), "weights mismatch");
    assert!(!edge_models.is_empty(), "cloud aggregation needs edges");
    let total: f64 = window_samples.iter().sum();
    assert!(
        total >= 0.0 && window_samples.iter().all(|w| w.is_finite() && *w >= 0.0),
        "window samples must be non-negative finite values"
    );
    let norm: Vec<f32> = if total > 0.0 {
        window_samples.iter().map(|&w| (w / total) as f32).collect()
    } else {
        // Mirror the `_into` uniform path bitwise: the total is the same
        // iterated f64 sum of ones.
        let uniform_total: f64 = window_samples.iter().map(|_| 1.0f64).sum();
        window_samples
            .iter()
            .map(|_| (1.0 / uniform_total) as f32)
            .collect()
    };
    // Accumulate exactly like `weighted_average`, but with the weights
    // already normalised (normalising again in f32 would diverge from
    // the f64-normalised hot path).
    let d = edge_models[0].param_count();
    let mut acc = vec![0.0f32; d];
    let mut buf = Vec::with_capacity(d);
    for (m, &s) in edge_models.iter().zip(&norm) {
        flatten_into(m, &mut buf);
        assert_eq!(buf.len(), d, "model architecture mismatch");
        for (a, &x) in acc.iter_mut().zip(&buf) {
            *a += s * x;
        }
    }
    let mut out = edge_models[0].clone();
    unflatten(&mut out, &acc);
    out
}

/// In-place form of [`edge_aggregate`] over `(model, sample_count)`
/// pairs; `dst` is overwritten with the weighted average. The clonable
/// iterator is walked twice (weight total, then accumulation), exactly
/// mirroring the reference's normalisation and per-model order.
pub fn edge_aggregate_into<'a, I>(dst: &mut Sequential, parts: I)
where
    I: Iterator<Item = (&'a Sequential, usize)> + Clone,
{
    let total: f32 = parts.clone().map(|(_, d)| d as f32).sum();
    assert!(total > 0.0, "edge aggregation needs samples");
    accumulate_pairs(dst, parts.map(|(m, d)| (m, d as f32 / total)));
}

/// `dst ← Σ wᵢ · mᵢ` with pairwise-fused accumulation: the per-element
/// add order is exactly the sequential [`axpy`] order (so results stay
/// bit-identical to the allocating references), but models are consumed
/// two at a time through [`axpy2`] to halve the traffic over `dst`.
fn accumulate_pairs<'a, I>(dst: &mut Sequential, mut scaled: I)
where
    I: Iterator<Item = (&'a Sequential, f32)>,
{
    zero_params(dst);
    loop {
        match (scaled.next(), scaled.next()) {
            (Some((m0, w0)), Some((m1, w1))) => axpy2(dst, w0, m0, w1, m1),
            (Some((m0, w0)), None) => {
                axpy(dst, w0, m0);
                break;
            }
            (None, _) => break,
        }
    }
}

/// In-place form of [`cloud_aggregate`] over `(model, window_samples)`
/// pairs, with the same uniform fallback when every window is empty.
/// Window weights accumulate and normalise in `f64` (see
/// [`cloud_aggregate`]); the cast to `f32` happens only on the final
/// normalised per-model weight.
pub fn cloud_aggregate_into<'a, I>(dst: &mut Sequential, parts: I)
where
    I: Iterator<Item = (&'a Sequential, f64)> + Clone,
{
    let total: f64 = parts.clone().map(|(_, w)| w).sum();
    if total > 0.0 {
        accumulate_pairs(dst, parts.map(|(m, w)| (m, (w / total) as f32)));
    } else {
        // Mirror the reference's uniform path bitwise: the total is the
        // same iterated f64 sum of ones.
        let uniform_total: f64 = parts.clone().map(|_| 1.0f64).sum();
        assert!(uniform_total > 0.0, "cloud aggregation needs edges");
        accumulate_pairs(dst, parts.map(|(m, _)| (m, (1.0 / uniform_total) as f32)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_nn::layers::Dense;
    use middle_nn::params::unflatten;
    use middle_tensor::random::rng;

    fn model_with(vals: f32) -> Sequential {
        let mut m = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
        let d = m.param_count();
        unflatten(&mut m, &vec![vals; d]);
        m
    }

    fn model_from(vals: &[f32]) -> Sequential {
        let mut m = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
        unflatten(&mut m, vals);
        m
    }

    #[test]
    fn edge_model_policy_ignores_local() {
        let e = model_with(1.0);
        let l = model_with(9.0);
        let init = on_device_init(OnDevicePolicy::EdgeModel, &e, &l);
        assert_eq!(flatten(&init), flatten(&e));
    }

    #[test]
    fn keep_local_policy_ignores_edge() {
        let e = model_with(1.0);
        let l = model_with(9.0);
        let init = on_device_init(OnDevicePolicy::KeepLocal, &e, &l);
        assert_eq!(flatten(&init), flatten(&l));
    }

    #[test]
    fn average_policy_is_midpoint() {
        let e = model_with(2.0);
        let l = model_with(4.0);
        let init = on_device_init(OnDevicePolicy::Average, &e, &l);
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn similarity_weighted_identical_models_is_equal_blend() {
        // U(w, w) = 1 ⇒ weights (1/2, 1/2) ⇒ result equals both inputs.
        let e = model_with(3.0);
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &e);
        assert!(flatten(&init)
            .iter()
            .zip(flatten(&e))
            .all(|(&a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn similarity_weighted_opposed_models_is_pure_edge() {
        // cos = −1 ⇒ U = 0 ⇒ edge weight 1.
        let e = model_with(2.0);
        let l = model_with(-2.0);
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &l);
        assert_eq!(flatten(&init), flatten(&e));
    }

    #[test]
    fn similarity_weighted_edge_always_dominates() {
        let d = model_with(0.0).param_count();
        let e = model_from(&(0..d).map(|i| (i as f32 * 0.7).sin()).collect::<Vec<_>>());
        let l = model_from(&(0..d).map(|i| (i as f32 * 0.3).cos()).collect::<Vec<_>>());
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &l);
        // ŵ − w_m must be closer to zero through the edge side: verify
        // the blend coefficient by solving one coordinate.
        let (fe, fl, fi) = (flatten(&e), flatten(&l), flatten(&init));
        let mut alpha_est = None;
        for i in 0..d {
            let denom = fe[i] - fl[i];
            if denom.abs() > 1e-3 {
                alpha_est = Some((fi[i] - fl[i]) / denom);
                break;
            }
        }
        let alpha = alpha_est.expect("some coordinate differs");
        assert!((0.5 - 1e-4..=1.0 + 1e-4).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn fixed_alpha_matches_blend_semantics() {
        let e = model_with(10.0);
        let l = model_with(0.0);
        let init = on_device_init(OnDevicePolicy::FixedAlpha { alpha: 0.3 }, &e, &l);
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    #[test]
    fn unclipped_can_extrapolate_past_edge_model() {
        // Anti-aligned local model ⇒ raw cosine < 0 ⇒ edge weight > 1.
        let e = model_with(1.0);
        let l = model_with(-1.0);
        let init = on_device_init(OnDevicePolicy::UnclippedSimilarity, &e, &l);
        // cos = −1 clamped to −0.5 ⇒ edge_w = 2, local_w = −1 ⇒ value 3.
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    fn mk_device_with(id: usize, flat_vals: &[f32]) -> Device {
        use middle_data::synthetic::{SyntheticSource, Task};
        let src = SyntheticSource::new(Task::Mnist, 3);
        let data = src.generate_balanced(10, id as u64);
        let mut m = middle_nn::zoo::logistic(&Task::Mnist.spec(), &mut rng(id as u64));
        unflatten(&mut m, flat_vals);
        Device::new(id, data, m, 50 + id as u64)
    }

    #[test]
    fn in_place_on_device_init_matches_reference_bitwise() {
        use middle_data::synthetic::Task;
        use middle_tensor::ops::dot_slices;
        let spec = Task::Mnist.spec();
        let mut edge = middle_nn::zoo::logistic(&spec, &mut rng(70));
        let d = edge.param_count();
        let edge_vals: Vec<f32> = (0..d).map(|i| ((i * 13 + 1) as f32).sin()).collect();
        unflatten(&mut edge, &edge_vals);
        let edge_flat = flatten(&edge);
        let edge_norm = dot_slices(&edge_flat, &edge_flat);
        let local_vals: Vec<f32> = (0..d).map(|i| ((i * 7 + 3) as f32).cos()).collect();
        for policy in [
            OnDevicePolicy::EdgeModel,
            OnDevicePolicy::KeepLocal,
            OnDevicePolicy::Average,
            OnDevicePolicy::FixedAlpha { alpha: 0.3 },
            OnDevicePolicy::SimilarityWeighted,
            OnDevicePolicy::UnclippedSimilarity,
        ] {
            let mut device = mk_device_with(0, &local_vals);
            let reference = on_device_init(policy, &edge, &device.model);
            on_device_init_into(policy, &mut device, &edge, &edge_flat, edge_norm);
            let (fr, fd) = (flatten(&reference), flatten(&device.model));
            for (i, (x, y)) in fr.iter().zip(&fd).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{policy:?} param {i}");
            }
        }
    }

    #[test]
    fn in_place_edge_and_cloud_aggregates_match_reference_bitwise() {
        let a = model_with(0.5);
        let b = model_with(-3.0);
        let c = model_with(7.25);
        let refs = [&a, &b, &c];

        let reference = edge_aggregate(&refs, &[30, 10, 5]);
        let mut dst = model_with(99.0);
        edge_aggregate_into(&mut dst, refs.iter().copied().zip([30usize, 10, 5]));
        assert_eq!(flatten(&reference), flatten(&dst));

        let reference = cloud_aggregate(&refs, &[4.0, 0.0, 12.0]);
        let mut dst = model_with(99.0);
        cloud_aggregate_into(&mut dst, refs.iter().copied().zip([4.0f64, 0.0, 12.0]));
        assert_eq!(flatten(&reference), flatten(&dst));

        // Uniform fallback when no window saw participation.
        let reference = cloud_aggregate(&refs, &[0.0, 0.0, 0.0]);
        let mut dst = model_with(99.0);
        cloud_aggregate_into(&mut dst, refs.iter().copied().zip([0.0f64, 0.0, 0.0]));
        assert_eq!(flatten(&reference), flatten(&dst));
    }

    #[test]
    fn cloud_window_weights_survive_past_f32_integer_precision() {
        // An f32 window counter freezes at 2^24: adding a typical
        // per-step sample total no longer changes it, so an edge's later
        // participation would be silently erased from its d̂_n weight.
        let frozen = (1u64 << 24) as f32;
        assert_eq!(frozen + 1.0, frozen, "f32 freeze premise");
        // The f64 window path keeps accumulating and normalises exactly.
        let a = model_with(0.0);
        let b = model_with(8.0);
        let big = (1u64 << 24) as f64;
        let windows = [big, 3.0 * big + 1_048_576.0];
        let agg = cloud_aggregate(&[&a, &b], &windows);
        let expected = 8.0 * ((windows[1] / (windows[0] + windows[1])) as f32);
        assert!(flatten(&agg).iter().all(|&v| (v - expected).abs() < 1e-5));
        // The extra 2^20 samples must show up in the weight (0.75 would
        // mean they were lost).
        assert!(expected / 8.0 > 0.753);
    }

    #[test]
    fn edge_aggregate_weights_by_samples() {
        let a = model_with(0.0);
        let b = model_with(10.0);
        let agg = edge_aggregate(&[&a, &b], &[30, 10]);
        assert!(flatten(&agg).iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn cloud_aggregate_falls_back_to_uniform() {
        let a = model_with(0.0);
        let b = model_with(4.0);
        let agg = cloud_aggregate(&[&a, &b], &[0.0, 0.0]);
        assert!(flatten(&agg).iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let weighted = cloud_aggregate(&[&a, &b], &[1.0, 3.0]);
        assert!(flatten(&weighted).iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }
}
