//! On-device model aggregation (paper §4.2, Eq. 9, plus baselines) and
//! the edge/cloud FedAvg aggregations (Eqs. 6–7).

use crate::algorithms::OnDevicePolicy;
use crate::similarity::{aggregation_weights, raw_cosine, similarity_utility};
use middle_nn::params::{blend, flatten, weighted_average};
use middle_nn::Sequential;

/// Computes the new initial local model `ŵ_m^t` for a device that just
/// moved into an edge (Algorithm 1, line 5).
///
/// * `edge_model` — the downloaded current edge model `w_n^t`;
/// * `local_model` — the carried model `w_m^t` inherited from the
///   previous edge.
pub fn on_device_init(
    policy: OnDevicePolicy,
    edge_model: &Sequential,
    local_model: &Sequential,
) -> Sequential {
    match policy {
        OnDevicePolicy::EdgeModel => edge_model.clone(),
        OnDevicePolicy::KeepLocal => local_model.clone(),
        OnDevicePolicy::Average => blend(edge_model, local_model, 0.5),
        OnDevicePolicy::FixedAlpha { alpha } => {
            assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
            blend(edge_model, local_model, alpha)
        }
        OnDevicePolicy::SimilarityWeighted => {
            let u = similarity_utility(&flatten(local_model), &flatten(edge_model));
            let (edge_w, _local_w) = aggregation_weights(u);
            blend(edge_model, local_model, edge_w)
        }
        OnDevicePolicy::UnclippedSimilarity => {
            // Ablation: use the raw cosine in the Eq. 9 weights. The raw
            // value can be negative; we clamp at −0.5 so the 1/(1+c)
            // weight stays bounded, which still permits the noisy
            // extrapolation the clipping of Eq. 8 is designed to prevent.
            let c = raw_cosine(&flatten(local_model), &flatten(edge_model)).max(-0.5);
            let edge_w = (1.0 / (1.0 + c)).min(2.0);
            let local_w = 1.0 - edge_w;
            let fe = flatten(edge_model);
            let fl = flatten(local_model);
            let mixed: Vec<f32> = fe
                .iter()
                .zip(&fl)
                .map(|(&e, &l)| edge_w * e + local_w * l)
                .collect();
            let mut out = edge_model.clone();
            middle_nn::params::unflatten(&mut out, &mixed);
            out
        }
    }
}

/// Edge aggregation (Eq. 6): FedAvg of uploaded local models, weighted by
/// per-device sample counts `d_m`.
pub fn edge_aggregate(models: &[&Sequential], sample_counts: &[usize]) -> Sequential {
    let weights: Vec<f32> = sample_counts.iter().map(|&d| d as f32).collect();
    weighted_average(models, &weights)
}

/// Cloud aggregation (Eq. 7): FedAvg of edge models weighted by the
/// participating-sample totals `d̂_n` accumulated over the sync window.
/// Edges whose window saw no participation get weight zero unless all
/// are zero, in which case a plain average is used.
pub fn cloud_aggregate(edge_models: &[&Sequential], window_samples: &[f32]) -> Sequential {
    assert_eq!(edge_models.len(), window_samples.len(), "weights mismatch");
    let total: f32 = window_samples.iter().sum();
    if total > 0.0 {
        weighted_average(edge_models, window_samples)
    } else {
        let uniform = vec![1.0f32; edge_models.len()];
        weighted_average(edge_models, &uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_nn::layers::Dense;
    use middle_nn::params::unflatten;
    use middle_tensor::random::rng;

    fn model_with(vals: f32) -> Sequential {
        let mut m = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
        let d = m.param_count();
        unflatten(&mut m, &vec![vals; d]);
        m
    }

    fn model_from(vals: &[f32]) -> Sequential {
        let mut m = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
        unflatten(&mut m, vals);
        m
    }

    #[test]
    fn edge_model_policy_ignores_local() {
        let e = model_with(1.0);
        let l = model_with(9.0);
        let init = on_device_init(OnDevicePolicy::EdgeModel, &e, &l);
        assert_eq!(flatten(&init), flatten(&e));
    }

    #[test]
    fn keep_local_policy_ignores_edge() {
        let e = model_with(1.0);
        let l = model_with(9.0);
        let init = on_device_init(OnDevicePolicy::KeepLocal, &e, &l);
        assert_eq!(flatten(&init), flatten(&l));
    }

    #[test]
    fn average_policy_is_midpoint() {
        let e = model_with(2.0);
        let l = model_with(4.0);
        let init = on_device_init(OnDevicePolicy::Average, &e, &l);
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn similarity_weighted_identical_models_is_equal_blend() {
        // U(w, w) = 1 ⇒ weights (1/2, 1/2) ⇒ result equals both inputs.
        let e = model_with(3.0);
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &e);
        assert!(flatten(&init)
            .iter()
            .zip(flatten(&e))
            .all(|(&a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn similarity_weighted_opposed_models_is_pure_edge() {
        // cos = −1 ⇒ U = 0 ⇒ edge weight 1.
        let e = model_with(2.0);
        let l = model_with(-2.0);
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &l);
        assert_eq!(flatten(&init), flatten(&e));
    }

    #[test]
    fn similarity_weighted_edge_always_dominates() {
        let d = model_with(0.0).param_count();
        let e = model_from(&(0..d).map(|i| (i as f32 * 0.7).sin()).collect::<Vec<_>>());
        let l = model_from(&(0..d).map(|i| (i as f32 * 0.3).cos()).collect::<Vec<_>>());
        let init = on_device_init(OnDevicePolicy::SimilarityWeighted, &e, &l);
        // ŵ − w_m must be closer to zero through the edge side: verify
        // the blend coefficient by solving one coordinate.
        let (fe, fl, fi) = (flatten(&e), flatten(&l), flatten(&init));
        let mut alpha_est = None;
        for i in 0..d {
            let denom = fe[i] - fl[i];
            if denom.abs() > 1e-3 {
                alpha_est = Some((fi[i] - fl[i]) / denom);
                break;
            }
        }
        let alpha = alpha_est.expect("some coordinate differs");
        assert!(alpha >= 0.5 - 1e-4 && alpha <= 1.0 + 1e-4, "alpha {alpha}");
    }

    #[test]
    fn fixed_alpha_matches_blend_semantics() {
        let e = model_with(10.0);
        let l = model_with(0.0);
        let init = on_device_init(OnDevicePolicy::FixedAlpha { alpha: 0.3 }, &e, &l);
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    #[test]
    fn unclipped_can_extrapolate_past_edge_model() {
        // Anti-aligned local model ⇒ raw cosine < 0 ⇒ edge weight > 1.
        let e = model_with(1.0);
        let l = model_with(-1.0);
        let init = on_device_init(OnDevicePolicy::UnclippedSimilarity, &e, &l);
        // cos = −1 clamped to −0.5 ⇒ edge_w = 2, local_w = −1 ⇒ value 3.
        assert!(flatten(&init).iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    #[test]
    fn edge_aggregate_weights_by_samples() {
        let a = model_with(0.0);
        let b = model_with(10.0);
        let agg = edge_aggregate(&[&a, &b], &[30, 10]);
        assert!(flatten(&agg).iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn cloud_aggregate_falls_back_to_uniform() {
        let a = model_with(0.0);
        let b = model_with(4.0);
        let agg = cloud_aggregate(&[&a, &b], &[0.0, 0.0]);
        assert!(flatten(&agg).iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let weighted = cloud_aggregate(&[&a, &b], &[1.0, 3.0]);
        assert!(flatten(&weighted).iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }
}
