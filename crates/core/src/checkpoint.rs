//! Serializable snapshots of a running simulation.
//!
//! A [`SimCheckpoint`] captures *everything* a paused run needs to
//! continue bitwise-identically: model parameters (cloud, edges,
//! devices — via [`middle_nn::serialize::Checkpoint`]), every RNG
//! stream's internal state, the fault-plane state (dropout chains and
//! the pending stale-upload queue), the communication ledger, the
//! evaluation points recorded so far, and the step cursor. The JSON
//! encoding uses shortest-round-trip float formatting, so `f32`/`f64`
//! values survive a save/load cycle bit for bit; the
//! checkpoint-resume-equivalence tests in
//! `crates/core/tests/sweep_engine.rs` gate this.
//!
//! What is deliberately *not* captured: telemetry latency histograms
//! (wall-clock measurements of the host that ran the first half —
//! meaningless to splice into a resumed run; the event counters, which
//! are deterministic, are captured), and per-step scratch buffers
//! (rebuilt on first use).
//!
//! A checkpoint records a digest of the originating [`SimConfig`]
//! ([`config_digest`]) and a schema version; [`crate::Simulation::restore`]
//! rejects a checkpoint whose digest or version disagrees instead of
//! silently resuming the wrong experiment.

use crate::comm::CommStats;
use crate::config::SimConfig;
use crate::faults::PendingStale;
use crate::metrics::EvalPoint;
use crate::telemetry::StepCounters;
use middle_nn::serialize::Checkpoint;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Version of the [`SimCheckpoint`] JSON schema. Bump on any field
/// change; restore rejects other versions.
pub const SIM_CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Captured xoshiro256** state of one RNG stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngStateCheckpoint {
    /// State word 0.
    pub s0: u64,
    /// State word 1.
    pub s1: u64,
    /// State word 2.
    pub s2: u64,
    /// State word 3.
    pub s3: u64,
}

impl RngStateCheckpoint {
    /// Captures `rng`'s current state.
    pub fn capture(rng: &StdRng) -> Self {
        let s = rng.state();
        RngStateCheckpoint {
            s0: s[0],
            s1: s[1],
            s2: s[2],
            s3: s[3],
        }
    }

    /// Rebuilds a generator resuming exactly where the captured one
    /// left off.
    pub fn restore(&self) -> StdRng {
        StdRng::from_state([self.s0, self.s1, self.s2, self.s3])
    }
}

/// Snapshot of one device's mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceCheckpoint {
    /// The carried local model's parameters.
    pub params: Checkpoint,
    /// Oort statistical utility from the last participation.
    pub oort_utility: Option<f32>,
    /// Time step of the last participation.
    pub last_participation: Option<usize>,
    /// The device's private batch-sampling RNG stream.
    pub rng: RngStateCheckpoint,
}

/// One live broadcast version of a lazy population: the shared flat
/// parameter vector and the cached squared norm every stub of this
/// version carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VersionCheckpoint {
    /// Stable version id (index into the version table).
    pub id: u32,
    /// The flat parameter vector.
    pub flat: Vec<f32>,
    /// Cached squared L2 norm (bit-exact, not recomputed on restore).
    pub norm_sq: f32,
}

/// Snapshot of one device slot of a lazy population: either a fully
/// materialised replica or a virtualized stub.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeviceSlotCheckpoint {
    /// The device was resident at capture time.
    Resident {
        /// The replica's full state.
        device: DeviceCheckpoint,
    },
    /// The device was virtualized at capture time.
    Stub {
        /// Version id the stub's parameters point at.
        version: u32,
        /// Oort statistical utility from the last participation.
        oort_utility: Option<f32>,
        /// Time step of the last participation.
        last_participation: Option<usize>,
        /// Saved batch-sampling RNG state; `None` for a virgin device.
        rng: Option<RngStateCheckpoint>,
    },
}

/// Snapshot of a lazy population: the live version table plus one slot
/// per device. Only present on checkpoints of lazy-mode simulations;
/// dense checkpoints keep serialising through [`SimCheckpoint::devices`]
/// byte-identically to pre-plane checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationCheckpoint {
    /// Live (still-referenced) version slots.
    pub versions: Vec<VersionCheckpoint>,
    /// Per-device slots, in device order.
    pub devices: Vec<DeviceSlotCheckpoint>,
}

/// Snapshot of one edge server's mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeCheckpoint {
    /// The edge model's parameters.
    pub params: Checkpoint,
    /// Participating samples since the last cloud sync (`d̂_n`).
    pub window_samples: f64,
}

/// Snapshot of the compression plane's mutable state. Only present
/// when the plane is lossy-active (an inert plane has no state; keeping
/// the field absent keeps pre-compression checkpoints readable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionPlaneCheckpoint {
    /// The dedicated compression RNG stream (stream 10).
    pub rng: RngStateCheckpoint,
    /// Per-device error-feedback residuals, in device order. An empty
    /// vector means the device has not uploaded yet (all-zero residual).
    pub device_residuals: Vec<Vec<f64>>,
    /// Per-edge error-feedback residuals, in edge order, same
    /// convention.
    pub edge_residuals: Vec<Vec<f64>>,
}

/// Snapshot of the fault plane's mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlaneCheckpoint {
    /// The dedicated fault RNG stream (stream 9).
    pub rng: RngStateCheckpoint,
    /// Per-device dropout chain state.
    pub device_down: Vec<bool>,
    /// Deadline-missed uploads awaiting their stale merge.
    pub pending: Vec<PendingStale>,
}

/// A complete snapshot of a running [`crate::Simulation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// [`SIM_CHECKPOINT_SCHEMA_VERSION`] at capture time.
    pub schema_version: u32,
    /// [`config_digest`] of the originating configuration.
    pub config_digest: u64,
    /// Next step to execute (steps `0..next_step` are done).
    pub next_step: usize,
    /// Wall-clock seconds accumulated by the run so far.
    pub elapsed_seconds: f64,
    /// Cloud model parameters.
    pub cloud: Checkpoint,
    /// Per-edge state, in edge order.
    pub edges: Vec<EdgeCheckpoint>,
    /// Per-device state, in device order (empty for lazy-mode
    /// simulations, which capture [`SimCheckpoint::population`] instead).
    pub devices: Vec<DeviceCheckpoint>,
    /// Lazy-population state (version table + device slots); `None` on
    /// dense simulations, keeping their serialisation byte-identical to
    /// pre-plane checkpoints.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub population: Option<PopulationCheckpoint>,
    /// The selection RNG stream (stream 6).
    pub selection_rng: RngStateCheckpoint,
    /// The availability RNG stream (stream 8).
    pub availability_rng: RngStateCheckpoint,
    /// The fault plane's state (stream 9 plus queues).
    pub faults: FaultPlaneCheckpoint,
    /// The compression plane's state (stream 10 plus error-feedback
    /// residuals); `None` when compression is off or lossless.
    #[serde(default)]
    pub compression: Option<CompressionPlaneCheckpoint>,
    /// Cross-round algorithm-policy state (FedFly in-flight set,
    /// FedLECC cluster assignment); `None` for stateless algorithms —
    /// including every pre-policy-API one, keeping their serialisation
    /// byte-identical to older checkpoints.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub algorithm: Option<crate::algorithms::AlgorithmState>,
    /// Communication ledger so far.
    pub comm: CommStats,
    /// Cloud synchronisations so far.
    pub syncs: u64,
    /// Active steps so far.
    pub active_steps: u64,
    /// Evaluation points recorded so far.
    pub points: Vec<EvalPoint>,
    /// Telemetry event counters so far (`None` when telemetry is off;
    /// latency histograms are host wall-clock and are not captured).
    pub telemetry_counters: Option<StepCounters>,
    /// Event-driven timeline state (pending event heap, per-edge wave
    /// state, in-flight upload snapshots, the simulated clock as raw
    /// `f64` bits); `None` for lockstep runs, keeping their
    /// serialisation byte-identical to pre-timeline checkpoints.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeline: Option<crate::timeline::TimelineCheckpoint>,
}

impl SimCheckpoint {
    /// Serialises to JSON (bit-exact float round trip).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation cannot fail")
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    /// Returns the JSON parse error message.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// FNV-1a digest of a configuration's canonical JSON encoding. Stored
/// in checkpoints and sweep state files so a snapshot is never applied
/// to a different experiment.
pub fn config_digest(config: &SimConfig) -> u64 {
    let json = serde_json::to_string(config).expect("config serialisation cannot fail");
    fnv1a(json.as_bytes())
}

/// Appends an FNV-1a integrity trailer to a JSON payload.
///
/// The sweep ledger (`sweep_state.json`) is the shared source of truth
/// for shard-level resume across worker *processes*, so a torn or
/// bit-flipped write must never be deserialized into a bogus resume.
/// Atomic tmp+rename writes already rule out torn files from our own
/// writers, but the trailer also catches payload corruption that still
/// parses as JSON (a flipped digit, a half-synced page after power
/// loss). The sealed form is the payload followed by one comment-style
/// line:
///
/// ```text
/// {...payload json...}
/// #fnv1a:0123456789abcdef
/// ```
///
/// [`unseal_json`] verifies and strips the trailer; a file without one
/// (written by an older version) passes through unchanged and stands or
/// falls on its own JSON parse.
pub fn seal_json(payload: &str) -> String {
    format!("{payload}\n#fnv1a:{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Verifies and strips a [`seal_json`] trailer.
///
/// Returns the bare payload. Legacy text with no trailer is returned
/// as-is (its JSON parse is the only integrity check available).
///
/// # Errors
/// A human-readable description when a trailer is present but its
/// digest does not match the payload (the file is corrupt).
pub fn unseal_json(text: &str) -> Result<&str, String> {
    const MARK: &str = "\n#fnv1a:";
    let Some(pos) = text.rfind(MARK) else {
        return Ok(text);
    };
    let payload = &text[..pos];
    let trailer = text[pos + MARK.len()..].trim_end();
    let Ok(expect) = u64::from_str_radix(trailer, 16) else {
        return Err(format!("malformed integrity trailer {trailer:?}"));
    };
    let got = fnv1a(payload.as_bytes());
    if got != expect {
        return Err(format!(
            "integrity trailer mismatch: payload hashes to {got:016x}, trailer says {expect:016x}"
        ));
    }
    Ok(payload)
}

/// FNV-1a over raw bytes (sweep state files digest their scenario list
/// with the same function).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use middle_data::Task;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rng_state_round_trips() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..7 {
            rng.gen::<u64>();
        }
        let ck = RngStateCheckpoint::capture(&rng);
        let mut restored = ck.restore();
        for _ in 0..16 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn config_digest_tracks_config_changes() {
        let a = SimConfig::tiny(Task::Mnist, Algorithm::middle());
        let mut b = a.clone();
        assert_eq!(config_digest(&a), config_digest(&b));
        b.seed = 1234;
        assert_ne!(config_digest(&a), config_digest(&b));
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn seal_unseal_round_trips_and_detects_corruption() {
        let payload = r#"{"records":[1,2,3]}"#;
        let sealed = seal_json(payload);
        assert_eq!(unseal_json(&sealed).unwrap(), payload);
        // Legacy bare JSON passes through untouched.
        assert_eq!(unseal_json(payload).unwrap(), payload);
        // A flipped payload byte under an intact trailer is caught.
        let corrupt = sealed.replacen("2,3", "2,4", 1);
        assert!(unseal_json(&corrupt).unwrap_err().contains("mismatch"));
        // A mangled trailer is caught too.
        let bad_trailer = format!("{payload}\n#fnv1a:zzzz\n");
        assert!(unseal_json(&bad_trailer).unwrap_err().contains("malformed"));
    }
}
