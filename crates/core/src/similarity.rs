//! The similarity utility metric (paper Eq. 8).
//!
//! `U(a, b) = max(cos(a, b), 0)` over flattened parameter vectors. The
//! clipping at zero "avoid\[s\] blind aggregation introducing noise": a
//! model pointing away from the reference contributes nothing rather
//! than a negative weight.

use middle_nn::params::flatten;
use middle_nn::Sequential;
use middle_tensor::ops::{combine_cosine, cosine_similarity_slices, dot_slices};

/// Similarity utility between two parameter vectors (Eq. 8).
pub fn similarity_utility(a: &[f32], b: &[f32]) -> f32 {
    cosine_similarity_slices(a, b).max(0.0)
}

/// Raw (unclipped) cosine similarity — kept for the clipping ablation.
pub fn raw_cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_similarity_slices(a, b)
}

/// [`similarity_utility`] with caller-supplied squared norms, skipping the
/// two norm passes. Bitwise identical to the uncached version whenever the
/// cached norms were themselves produced by `dot_slices(v, v)`.
pub fn similarity_utility_cached(a: &[f32], a_norm_sq: f32, b: &[f32], b_norm_sq: f32) -> f32 {
    raw_cosine_cached(a, a_norm_sq, b, b_norm_sq).max(0.0)
}

/// [`raw_cosine`] with caller-supplied squared norms (one dot pass).
pub fn raw_cosine_cached(a: &[f32], a_norm_sq: f32, b: &[f32], b_norm_sq: f32) -> f32 {
    combine_cosine(dot_slices(a, b), a_norm_sq, b_norm_sq)
}

/// Similarity utility between two models' parameters.
pub fn model_similarity_utility(a: &Sequential, b: &Sequential) -> f32 {
    similarity_utility(&flatten(a), &flatten(b))
}

/// On-device aggregation weight pair derived from the utility (Eq. 9):
/// the new initial model is `edge_w * w_n + local_w * w_m` with
/// `edge_w = 1/(1+U)` and `local_w = U/(1+U)`.
///
/// `U ∈ [0, 1]` implies `edge_w ∈ [1/2, 1]`: the edge model always
/// dominates, as the paper requires.
pub fn aggregation_weights(utility: f32) -> (f32, f32) {
    debug_assert!((0.0..=1.0).contains(&utility), "utility must be clipped");
    let edge_w = 1.0 / (1.0 + utility);
    (edge_w, 1.0 - edge_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_negative_cosine_to_zero() {
        let a = [1.0f32, 0.0];
        let b = [-1.0f32, 0.0];
        assert_eq!(similarity_utility(&a, &b), 0.0);
        assert_eq!(raw_cosine(&a, &b), -1.0);
    }

    #[test]
    fn identical_vectors_have_unit_utility() {
        let a = [0.3f32, -0.7, 2.0];
        assert!((similarity_utility(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_vectors_have_zero_utility() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!(similarity_utility(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_convention() {
        let a = [0.0f32, 0.0];
        let b = [1.0f32, 2.0];
        assert_eq!(similarity_utility(&a, &b), 0.0);
    }

    #[test]
    fn weights_form_convex_pair_dominated_by_edge() {
        for u in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let (edge_w, local_w) = aggregation_weights(u);
            assert!((edge_w + local_w - 1.0).abs() < 1e-6);
            assert!(edge_w >= 0.5, "edge model must dominate (U={u})");
            assert!(local_w >= 0.0);
        }
    }

    #[test]
    fn weights_at_extremes_match_eq9() {
        // U = 0: pure edge model. U = 1: equal blend.
        let (e0, l0) = aggregation_weights(0.0);
        assert_eq!((e0, l0), (1.0, 0.0));
        let (e1, l1) = aggregation_weights(1.0);
        assert!((e1 - 0.5).abs() < 1e-6 && (l1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cached_norm_variants_are_bitwise_identical() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.31 - 4.0).collect();
        let b: Vec<f32> = (0..37).map(|i| ((i * i) as f32).sin()).collect();
        let (aa, bb) = (dot_slices(&a, &a), dot_slices(&b, &b));
        assert_eq!(
            similarity_utility(&a, &b).to_bits(),
            similarity_utility_cached(&a, aa, &b, bb).to_bits()
        );
        assert_eq!(
            raw_cosine(&a, &b).to_bits(),
            raw_cosine_cached(&a, aa, &b, bb).to_bits()
        );
    }

    #[test]
    fn model_level_wrapper_agrees_with_slice_level() {
        use middle_nn::layers::Dense;
        use middle_tensor::random::rng;
        let a = Sequential::new().push(Dense::new(3, 2, &mut rng(1)));
        let b = Sequential::new().push(Dense::new(3, 2, &mut rng(2)));
        let via_model = model_similarity_utility(&a, &b);
        let via_slices = similarity_utility(
            &middle_nn::params::flatten(&a),
            &middle_nn::params::flatten(&b),
        );
        assert_eq!(via_model, via_slices);
    }
}
