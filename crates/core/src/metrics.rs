//! Run records and convergence metrics: accuracy curves,
//! time-to-accuracy and speedups — the quantities behind Figures 6–8 and
//! the paper's 1.51×–6.85× claim.

use crate::comm::CommStats;
use crate::telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};

/// One evaluation point of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Time step of the evaluation.
    pub step: usize,
    /// Accuracy of the (virtual) global model on the held-out test set.
    pub global_accuracy: f32,
    /// Test loss of the global model.
    pub global_loss: f32,
    /// Per-edge-model accuracies, when edge evaluation was enabled.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub edge_accuracy: Vec<f32>,
    /// Per-class accuracy of the global model, when enabled
    /// (`None` entries = class absent from the test set).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub global_per_class: Vec<Option<f32>>,
    /// Per-class accuracy of edge model 0, when enabled (Figure 1b/2b).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub edge0_per_class: Vec<Option<f32>>,
}

/// Version of the [`RunRecord`] JSON schema. Bump on any
/// breaking field change so sweep and checkpoint files stay
/// forward-parseable.
pub const RUN_RECORD_SCHEMA_VERSION: u32 = 1;

/// The complete measured output of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// [`RUN_RECORD_SCHEMA_VERSION`] at the time the record was
    /// produced (0 when parsed from a pre-versioned file).
    #[serde(default)]
    pub schema_version: u32,
    /// Algorithm display name.
    pub algorithm: String,
    /// Task name.
    pub task: String,
    /// Evaluation points in step order.
    pub points: Vec<EvalPoint>,
    /// Empirical global mobility of the trace actually used.
    pub empirical_mobility: f64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Model transmissions performed by the run.
    #[serde(default)]
    pub comm: CommStats,
    /// Cloud synchronisations performed.
    #[serde(default)]
    pub syncs: u64,
    /// Steps in which at least one device participated (the wireless
    /// round count of [`CommStats::wall_clock`]); availability
    /// filtering can leave steps fully inactive.
    #[serde(default)]
    pub active_steps: u64,
    /// Number of f32 parameters in the model the run trained (0 when
    /// parsed from a pre-compression record). Lets byte-exact wall
    /// clocks be recomputed from the record alone.
    #[serde(default)]
    pub param_count: u64,
    /// Telemetry summary, when the run was instrumented
    /// (`SimConfig::telemetry` / `telemetry_jsonl`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<TelemetryReport>,
    /// Final simulated-clock reading of an event-driven run (the
    /// timestamp of the last processed event). `None` for lockstep
    /// runs. Deterministic — unlike `wall_seconds`, which is host
    /// timing — but still excluded from bitwise record comparisons,
    /// which contrast lockstep and event-driven runs whose clocks
    /// legitimately differ.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub event_seconds: Option<f64>,
}

impl RunRecord {
    /// Final global accuracy (0.0 for an empty record).
    pub fn final_accuracy(&self) -> f32 {
        self.points.last().map_or(0.0, |p| p.global_accuracy)
    }

    /// Best global accuracy seen.
    pub fn best_accuracy(&self) -> f32 {
        self.points
            .iter()
            .map(|p| p.global_accuracy)
            .fold(0.0, f32::max)
    }

    /// Mean of the last `n` evaluation accuracies — the "final accuracy"
    /// bars of Figure 7 (smoothed, per §6.1.3's smoothing note).
    ///
    /// # Panics
    /// Panics when `n == 0`, mirroring [`RunRecord::smoothed`] — a zero
    /// window is a caller bug, not "the last 1 point".
    pub fn tail_accuracy(&self, n: usize) -> f32 {
        assert!(n > 0, "tail window must be positive");
        if self.points.is_empty() {
            return 0.0;
        }
        let k = n.min(self.points.len());
        let tail = &self.points[self.points.len() - k..];
        // Accumulate in f64 so long tails don't drift: summing thousands
        // of f32 accuracies loses low bits well before the window ends
        // (same failure mode as the edge `window_samples` counter).
        let sum: f64 = tail.iter().map(|p| f64::from(p.global_accuracy)).sum();
        (sum / k as f64) as f32
    }

    /// Simulated communication wall-clock of this run under the
    /// two-tier link model, charging wireless rounds only for the steps
    /// that actually moved models. When the record carries byte-exact
    /// payload counters (every run since the compression plane), rounds
    /// scale with the bytes actually moved
    /// ([`CommStats::wall_clock_bytes`]); older records fall back to
    /// the dense rounds model ([`CommStats::wall_clock`]), which the
    /// byte model reproduces exactly for dense payloads.
    pub fn comm_wall_clock(&self, wireless_s: f64, wan_s: f64) -> f64 {
        if self.param_count > 0 && self.comm.payload_total_bytes() > 0 {
            self.comm.wall_clock_bytes(
                self.active_steps,
                self.syncs,
                wireless_s,
                wan_s,
                self.param_count,
            )
        } else {
            self.comm
                .wall_clock(self.active_steps, self.syncs, wireless_s, wan_s)
        }
    }

    /// First time step whose *smoothed* accuracy reaches `target`
    /// (window-3 moving average, matching the paper's smoothed
    /// presentation). `None` when never reached.
    pub fn time_to_accuracy(&self, target: f32) -> Option<usize> {
        let smooth = self.smoothed(3);
        self.points
            .iter()
            .zip(smooth)
            .find(|(_, s)| *s >= target)
            .map(|(p, _)| p.step)
    }

    /// Moving-average smoothing of the global-accuracy series.
    pub fn smoothed(&self, window: usize) -> Vec<f32> {
        assert!(window > 0, "window must be positive");
        let acc: Vec<f32> = self.points.iter().map(|p| p.global_accuracy).collect();
        (0..acc.len())
            .map(|i| {
                let lo = i.saturating_sub(window - 1);
                let s: f64 = acc[lo..=i].iter().map(|&a| f64::from(a)).sum();
                (s / (i - lo + 1) as f64) as f32
            })
            .collect()
    }

    /// The accuracy series as `(step, accuracy)` pairs.
    pub fn curve(&self) -> Vec<(usize, f32)> {
        self.points
            .iter()
            .map(|p| (p.step, p.global_accuracy))
            .collect()
    }

    /// Dumps the record as CSV (`step,accuracy,loss`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,accuracy,loss\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6}\n",
                p.step, p.global_accuracy, p.global_loss
            ));
        }
        out
    }
}

/// Convergence speedup of `fast` over `slow` toward `target` accuracy:
/// `steps(slow) / steps(fast)`.
///
/// Returns `None` when `fast` never reaches the target; when only `slow`
/// fails, the speedup is computed against `slow`'s horizon (a lower
/// bound), matching how the paper reports baselines that never converge.
pub fn speedup(fast: &RunRecord, slow: &RunRecord, target: f32) -> Option<f64> {
    let tf = fast.time_to_accuracy(target)? as f64;
    let ts = match slow.time_to_accuracy(target) {
        Some(t) => t as f64,
        None => slow.points.last().map(|p| p.step)? as f64,
    };
    // A time-to-accuracy of step 0 means the initial model already meets
    // the target; treat as 1 step to keep the ratio finite.
    Some(ts.max(1.0) / tf.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(accs: &[f32]) -> RunRecord {
        RunRecord {
            schema_version: RUN_RECORD_SCHEMA_VERSION,
            algorithm: "test".into(),
            task: "mnist".into(),
            points: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| EvalPoint {
                    step: i * 2,
                    global_accuracy: a,
                    global_loss: 1.0 - a,
                    edge_accuracy: Vec::new(),
                    global_per_class: Vec::new(),
                    edge0_per_class: Vec::new(),
                })
                .collect(),
            empirical_mobility: 0.5,
            wall_seconds: 1.0,
            comm: CommStats::default(),
            syncs: 0,
            active_steps: 0,
            param_count: 0,
            telemetry: None,
            event_seconds: None,
        }
    }

    #[test]
    fn final_best_tail() {
        let r = record(&[0.1, 0.5, 0.9, 0.7]);
        assert_eq!(r.final_accuracy(), 0.7);
        assert_eq!(r.best_accuracy(), 0.9);
        assert!((r.tail_accuracy(2) - 0.8).abs() < 1e-6);
        assert!((r.tail_accuracy(100) - 0.55).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "tail window must be positive")]
    fn tail_accuracy_rejects_zero_window() {
        record(&[0.5, 0.6]).tail_accuracy(0);
    }

    #[test]
    fn long_constant_series_is_exact() {
        // 100k points of a constant whose f32 running sum drifts badly
        // (0.1 is inexact in binary). With f64 accumulation the mean of a
        // constant series must come back as exactly that constant.
        let accs = vec![0.1f32; 100_000];
        let r = record(&accs);
        assert_eq!(r.tail_accuracy(accs.len()).to_bits(), 0.1f32.to_bits());
        let smooth = r.smoothed(1000);
        assert!(
            smooth.iter().all(|&s| s.to_bits() == 0.1f32.to_bits()),
            "smoothed series drifted from the constant input"
        );
    }

    #[test]
    fn comm_wall_clock_uses_active_steps() {
        let mut r = record(&[0.5]);
        r.syncs = 1;
        r.active_steps = 4;
        // 2·4 + 1 wireless rounds, 2 WAN rounds.
        assert!((r.comm_wall_clock(1.0, 10.0) - 29.0).abs() < 1e-9);
    }

    #[test]
    fn comm_wall_clock_uses_byte_model_when_counters_present() {
        let mut r = record(&[0.5]);
        r.syncs = 1;
        r.active_steps = 4;
        r.param_count = 100;
        // Dense byte counters must reproduce the rounds model exactly.
        r.comm.edge_to_device = 8;
        r.comm.device_to_edge = 8;
        r.comm.edge_to_cloud = 2;
        r.comm.cloud_to_edge = 2;
        r.comm.cloud_to_device = 8;
        r.comm.edge_to_device_bytes = 8 * 400;
        r.comm.device_to_edge_bytes = 8 * 400;
        r.comm.edge_to_cloud_bytes = 2 * 400;
        r.comm.cloud_to_edge_bytes = 2 * 400;
        r.comm.cloud_to_device_bytes = 8 * 400;
        assert!((r.comm_wall_clock(1.0, 10.0) - 29.0).abs() < 1e-9);
        // Halving uplink bytes shrinks the clock.
        r.comm.device_to_edge_bytes = 8 * 200;
        assert!(r.comm_wall_clock(1.0, 10.0) < 29.0 - 1.0);
    }

    #[test]
    fn time_to_accuracy_uses_smoothing() {
        // Raw series spikes to 0.9 once at index 1 then collapses; the
        // window-3 smoothed series must not trigger on the spike.
        let r = record(&[0.0, 0.9, 0.0, 0.0, 0.8, 0.85, 0.9]);
        let t = r.time_to_accuracy(0.8).unwrap();
        assert!(t >= 8, "triggered too early at {t}");
    }

    #[test]
    fn time_to_accuracy_none_when_unreached() {
        assert_eq!(record(&[0.1, 0.2]).time_to_accuracy(0.9), None);
    }

    #[test]
    fn smoothing_window_one_is_identity() {
        let r = record(&[0.3, 0.6, 0.2]);
        assert_eq!(r.smoothed(1), vec![0.3, 0.6, 0.2]);
    }

    #[test]
    fn speedup_ratios() {
        let fast = record(&[0.5, 0.8, 0.9, 0.9, 0.9]);
        let slow = record(&[0.1, 0.2, 0.3, 0.8, 0.9]);
        // smoothed(3) fast reaches 0.85 around index 3 (step 6); slow at
        // index 4 (step 8) or never — just check ordering > 1.
        let s = speedup(&fast, &slow, 0.8).unwrap();
        assert!(s > 1.0, "speedup {s}");
    }

    #[test]
    fn speedup_none_when_fast_fails() {
        let fast = record(&[0.1, 0.1]);
        let slow = record(&[0.9, 0.9]);
        assert_eq!(speedup(&fast, &slow, 0.8), None);
    }

    #[test]
    fn speedup_uses_horizon_when_slow_fails() {
        let fast = record(&[0.9, 0.9, 0.9, 0.9, 0.9]);
        let slow = record(&[0.1, 0.1, 0.1, 0.1, 0.1]);
        let s = speedup(&fast, &slow, 0.8).unwrap();
        assert!(s >= 8.0, "horizon-bound speedup {s}");
    }

    #[test]
    fn legacy_record_json_parses_as_version_zero() {
        let json = serde_json::to_string(&record(&[0.5])).unwrap();
        let stripped = json.replace("\"schema_version\":1,", "");
        assert_ne!(json, stripped, "schema_version missing from JSON");
        let back: RunRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.schema_version, 0);
        assert_eq!(back.final_accuracy(), 0.5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = record(&[0.5]).to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("step,accuracy,loss"));
        assert_eq!(lines.next(), Some("0,0.500000,0.500000"));
    }
}
