//! In-edge device selection (paper §4.3, Eqs. 10–12, plus baselines).
//!
//! The hot path is allocation-free: candidate scores come from the
//! devices' cached flat views ([`crate::device::Device::flat`]) through a
//! fused identity-based kernel, candidates are scored in parallel into a
//! caller-owned [`SelectionScratch`], and the top-k cut uses an O(n)
//! partial partition instead of a full sort. The `*_reference` functions
//! keep the original allocating implementations as the numerical oracle
//! for the equivalence tests.

use crate::algorithms::SelectionPolicy;
use crate::device::Device;
use crate::similarity::similarity_utility;
use middle_nn::params::flatten;
use middle_tensor::ops::{combine_cosine, dot_slices};
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Reusable buffers for [`select_devices_into`]; create once and pass to
/// every call so steady-state selection performs no heap allocation.
#[derive(Default)]
pub struct SelectionScratch {
    scored: Vec<(f32, u32, usize)>,
}

impl SelectionScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Candidate score functions for the population-agnostic selection entry
/// points ([`select_devices_scored`], [`select_devices_reference_scored`]):
/// both take a device id and return the policy score. The `&[Device]`
/// front doors build these from the dense device slice; the lazy
/// population plane supplies closures that read resident devices or the
/// shared per-version flats instead. Score functions consume no
/// randomness and may be called from parallel scoring, hence `Sync`.
pub struct CandidateScorers<'a> {
    /// The MIDDLE update-similarity score `U(w_c, Δw_m)` for device `m`.
    pub similarity: &'a (dyn Fn(usize) -> f32 + Sync),
    /// The Oort statistical utility for device `m` (`+inf` when the
    /// device has never trained).
    pub oort: &'a (dyn Fn(usize) -> f32 + Sync),
    /// The loss-ranked cluster of device `m`, supplied by a
    /// cluster-carrying [`crate::algorithms::AlgorithmPolicy`] when the
    /// policy is [`SelectionPolicy::ClusterGuided`]. `None` collapses
    /// every candidate into one cluster, degrading cluster-guided
    /// selection to a plain Oort-utility top-k.
    pub cluster: Option<&'a (dyn Fn(usize) -> u32 + Sync)>,
}

/// Selects up to `k` devices from `candidates` (indices into `devices`)
/// under `policy`.
///
/// When fewer than `k` candidates are present, all of them are selected —
/// the edge trains with whatever it has (devices can cluster on one edge
/// under high mobility).
///
/// Convenience wrapper over [`select_devices_into`] that allocates its
/// own scratch and output; the simulation loop calls the `_into` variant
/// directly with persistent buffers.
pub fn select_devices(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    devices: &[Device],
    cloud_flat: &[f32],
    rng: &mut StdRng,
) -> Vec<usize> {
    let cloud_norm_sq = dot_slices(cloud_flat, cloud_flat);
    let mut scratch = SelectionScratch::new();
    let mut out = Vec::new();
    select_devices_into(
        policy,
        k,
        candidates,
        devices,
        cloud_flat,
        cloud_norm_sq,
        rng,
        &mut scratch,
        &mut out,
    );
    out
}

/// Allocation-free core of [`select_devices`]: scores land in `scratch`,
/// winners in `out` (cleared first). `cloud_norm_sq` must be
/// `dot_slices(cloud_flat, cloud_flat)` — the caller caches it alongside
/// the flat vector.
#[allow(clippy::too_many_arguments)]
pub fn select_devices_into(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    devices: &[Device],
    cloud_flat: &[f32],
    cloud_norm_sq: f32,
    rng: &mut StdRng,
    scratch: &mut SelectionScratch,
    out: &mut Vec<usize>,
) {
    let similarity = |m: usize| update_similarity(&devices[m], cloud_flat, cloud_norm_sq);
    let oort = |m: usize| devices[m].oort_utility.unwrap_or(f32::INFINITY);
    select_devices_scored(
        policy,
        k,
        candidates,
        &CandidateScorers {
            similarity: &similarity,
            oort: &oort,
            cluster: None,
        },
        rng,
        scratch,
        out,
    );
}

/// Population-agnostic core of [`select_devices_into`]: identical rng
/// stream, parallel scoring and top-k cut, with candidate scores coming
/// from caller-supplied [`CandidateScorers`] instead of a dense
/// `&[Device]` slice.
pub fn select_devices_scored(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    scorers: &CandidateScorers<'_>,
    rng: &mut StdRng,
    scratch: &mut SelectionScratch,
    out: &mut Vec<usize>,
) {
    assert!(k > 0, "K must be positive");
    out.clear();
    if candidates.len() <= k {
        out.extend_from_slice(candidates);
        return;
    }
    if matches!(policy, SelectionPolicy::Random) {
        sample_without_replacement_into(candidates, k, rng, out);
        return;
    }
    // Tie-break keys are drawn serially in candidate order so the rng
    // stream matches the reference implementation exactly; scores are
    // then filled in parallel (score functions consume no randomness).
    let scored = &mut scratch.scored;
    scored.clear();
    scored.extend(candidates.iter().map(|&m| (0.0f32, rng.gen::<u32>(), m)));
    match policy {
        SelectionPolicy::Random => unreachable!("handled above"),
        SelectionPolicy::LeastSimilarUpdate => {
            scored.par_iter_mut().for_each(|slot| {
                slot.0 = -(scorers.similarity)(slot.2);
            });
        }
        SelectionPolicy::MostSimilarUpdate => {
            scored.par_iter_mut().for_each(|slot| {
                slot.0 = (scorers.similarity)(slot.2);
            });
        }
        // Never-trained devices get +inf utility: Oort-style
        // exploration of fresh clients, required here because moved
        // devices have no history at the new edge. Cluster-guided
        // selection ranks by the same utility within each cluster.
        SelectionPolicy::OortUtility | SelectionPolicy::ClusterGuided { .. } => {
            scored.par_iter_mut().for_each(|slot| {
                slot.0 = (scorers.oort)(slot.2);
            });
        }
    }
    if matches!(policy, SelectionPolicy::ClusterGuided { .. }) {
        cluster_round_robin_into(scored, scorers.cluster, k, out);
    } else {
        top_k_into(scored, k, out);
    }
}

/// The MIDDLE selection criterion `U(w_c, Δw_m)` with `Δw_m = w_m − w_c`
/// (Eqs. 10–11): how aligned the device's accumulated update is with the
/// current cloud model.
///
/// Fused, allocation-free form: instead of materialising `Δw_m`, the
/// three quadratic forms of the cosine are recovered from one streaming
/// dot product and the cached squared norms via
/// `dot(c, l−c) = dot(c,l) − ‖c‖²` and
/// `‖l−c‖² = ‖l‖² − 2·dot(c,l) + ‖c‖²`.
/// The subtraction can catastrophically cancel when `l ≈ c`, so the
/// squared delta norm is clamped at zero; exact ties (`l == c` bitwise,
/// i.e. freshly synced devices) still evaluate to exactly 0 utility, the
/// same as the reference path.
pub fn update_similarity(device: &Device, cloud_flat: &[f32], cloud_norm_sq: f32) -> f32 {
    update_similarity_flat(
        device.flat(),
        device.flat_norm_sq(),
        cloud_flat,
        cloud_norm_sq,
    )
}

/// [`update_similarity`] on raw flat parameters: the lazy population
/// plane scores virtualized stubs straight off their shared version
/// flats through this entry point, bitwise-identically to a dense
/// device whose cached flat holds the same values.
pub fn update_similarity_flat(
    local: &[f32],
    local_norm_sq: f32,
    cloud_flat: &[f32],
    cloud_norm_sq: f32,
) -> f32 {
    assert_eq!(local.len(), cloud_flat.len(), "architecture mismatch");
    let cl = dot_slices(cloud_flat, local);
    let dot_c_delta = cl - cloud_norm_sq;
    let delta_norm_sq = (local_norm_sq - 2.0 * cl + cloud_norm_sq).max(0.0);
    combine_cosine(dot_c_delta, cloud_norm_sq, delta_norm_sq).max(0.0)
}

/// Original allocating form of [`update_similarity`] (flatten + explicit
/// `Δw` vector) — the numerical oracle for the fused kernel.
pub fn update_similarity_reference(device: &Device, cloud_flat: &[f32]) -> f32 {
    update_similarity_reference_flat(&flatten(&device.model), cloud_flat)
}

/// [`update_similarity_reference`] on raw flat parameters (the oracle
/// counterpart of [`update_similarity_flat`]).
pub fn update_similarity_reference_flat(local: &[f32], cloud_flat: &[f32]) -> f32 {
    assert_eq!(local.len(), cloud_flat.len(), "architecture mismatch");
    let delta: Vec<f32> = local.iter().zip(cloud_flat).map(|(l, c)| l - c).collect();
    similarity_utility(cloud_flat, &delta)
}

/// Original full-sort selection — the oracle for
/// [`select_devices_into`], consuming the rng stream identically.
pub fn select_devices_reference(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    devices: &[Device],
    cloud_flat: &[f32],
    rng: &mut StdRng,
) -> Vec<usize> {
    let similarity = |m: usize| update_similarity_reference(&devices[m], cloud_flat);
    let oort = |m: usize| devices[m].oort_utility.unwrap_or(f32::INFINITY);
    select_devices_reference_scored(
        policy,
        k,
        candidates,
        &CandidateScorers {
            similarity: &similarity,
            oort: &oort,
            cluster: None,
        },
        rng,
    )
}

/// Population-agnostic core of [`select_devices_reference`]: the
/// original full-sort selection with scores from caller-supplied
/// [`CandidateScorers`], consuming the rng stream identically.
pub fn select_devices_reference_scored(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    scorers: &CandidateScorers<'_>,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(k > 0, "K must be positive");
    if candidates.len() <= k {
        return candidates.to_vec();
    }
    let top_k_by = |score: &dyn Fn(usize) -> f32, rng: &mut StdRng| -> Vec<usize> {
        let mut scored: Vec<(f32, u32, usize)> = candidates
            .iter()
            .map(|&m| (score(m), rng.gen::<u32>(), m))
            .collect();
        // Descending score, random key on ties; NaN sorts last.
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().take(k).map(|(_, _, m)| m).collect()
    };
    match policy {
        SelectionPolicy::Random => {
            let mut out = Vec::new();
            sample_without_replacement_into(candidates, k, rng, &mut out);
            out
        }
        SelectionPolicy::LeastSimilarUpdate => top_k_by(&|m| -(scorers.similarity)(m), rng),
        SelectionPolicy::MostSimilarUpdate => top_k_by(&|m| (scorers.similarity)(m), rng),
        SelectionPolicy::OortUtility => top_k_by(&|m| (scorers.oort)(m), rng),
        SelectionPolicy::ClusterGuided { .. } => {
            // Same serial key draws as `top_k_by`, then the *shared*
            // round-robin cut — the fast path calls the identical
            // function, so fast == reference holds by construction.
            let mut scored: Vec<(f32, u32, usize)> = candidates
                .iter()
                .map(|&m| ((scorers.oort)(m), rng.gen::<u32>(), m))
                .collect();
            let mut out = Vec::new();
            cluster_round_robin_into(&mut scored, scorers.cluster, k, &mut out);
            out
        }
    }
}

/// Top-`k` cut over pre-scored candidates in O(n): partition with
/// `select_nth_unstable_by`, then order only the winning prefix.
///
/// Ties are broken *randomly* via the pre-drawn `u32` keys: exact ties
/// are common (e.g. every freshly-synced device has `Δw = 0` and hence
/// utility 0), and a deterministic id tie-break would starve high-id
/// devices of participation. The candidate index is a final tie-break so
/// the (vanishingly rare) equal-key case stays deterministic and matches
/// the reference's stable sort over ascending candidate lists.
fn top_k_into(scored: &mut [(f32, u32, usize)], k: usize, out: &mut Vec<usize>) {
    debug_assert!(k < scored.len(), "caller handles the select-all case");
    let cmp = |a: &(f32, u32, usize), b: &(f32, u32, usize)| {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    };
    scored.select_nth_unstable_by(k - 1, cmp);
    let winners = &mut scored[..k];
    winners.sort_unstable_by(cmp);
    out.extend(winners.iter().map(|&(_, _, m)| m));
}

/// FedLECC-style cluster-guided cut ([`SelectionPolicy::ClusterGuided`]):
/// rank every candidate by (score desc, key, id) — the same total order
/// as [`top_k_into`] — then take each cluster's best remaining candidate
/// round-robin (ascending cluster id) until `k` are selected, so every
/// loss stratum stays represented even when one cluster dominates the
/// raw top-k.
///
/// Shared verbatim by the fast and reference selection paths: both draw
/// tie-break keys serially in candidate order and then call this, so the
/// two are identical by construction. Allocates (it is not on the
/// MIDDLE hot path).
fn cluster_round_robin_into(
    scored: &mut [(f32, u32, usize)],
    cluster: Option<&(dyn Fn(usize) -> u32 + Sync)>,
    k: usize,
    out: &mut Vec<usize>,
) {
    debug_assert!(k < scored.len(), "caller handles the select-all case");
    let cmp = |a: &(f32, u32, usize), b: &(f32, u32, usize)| {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    };
    scored.sort_unstable_by(cmp);
    let single = |_: usize| 0u32;
    let cluster: &(dyn Fn(usize) -> u32 + Sync) = match cluster {
        Some(c) => c,
        None => &single,
    };
    // Bucket candidates by cluster id (ascending), preserving the score
    // order within each bucket.
    let mut buckets: Vec<(u32, Vec<usize>)> = Vec::new();
    for &(_, _, m) in scored.iter() {
        let c = cluster(m);
        match buckets.binary_search_by_key(&c, |b| b.0) {
            Ok(i) => buckets[i].1.push(m),
            Err(i) => buckets.insert(i, (c, vec![m])),
        }
    }
    let mut cursors = vec![0usize; buckets.len()];
    while out.len() < k {
        let before = out.len();
        for (i, (_, members)) in buckets.iter().enumerate() {
            if out.len() == k {
                break;
            }
            if cursors[i] < members.len() {
                out.push(members[cursors[i]]);
                cursors[i] += 1;
            }
        }
        debug_assert!(out.len() > before, "ran out of candidates before k");
        if out.len() == before {
            break;
        }
    }
}

/// Uniform sample of `k` distinct items (partial Fisher–Yates) appended
/// to `out`.
fn sample_without_replacement_into(
    items: &[usize],
    k: usize,
    rng: &mut StdRng,
    out: &mut Vec<usize>,
) {
    out.extend_from_slice(items);
    for i in 0..k {
        let j = rng.gen_range(i..out.len());
        out.swap(i, j);
    }
    out.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_data::synthetic::{SyntheticSource, Task};
    use middle_nn::params::unflatten;
    use middle_nn::zoo;
    use middle_tensor::random::rng;

    fn mk_devices(n: usize) -> Vec<Device> {
        let src = SyntheticSource::new(Task::Mnist, 3);
        (0..n)
            .map(|id| {
                let data = src.generate_balanced(10, id as u64);
                let model = zoo::logistic(&Task::Mnist.spec(), &mut rng(id as u64));
                Device::new(id, data, model, 100 + id as u64)
            })
            .collect()
    }

    fn set_params(device: &mut Device, flat: &[f32]) {
        unflatten(&mut device.model, flat);
        device.refresh_flat();
    }

    #[test]
    fn fewer_candidates_than_k_selects_all() {
        let devices = mk_devices(3);
        let cloud = flatten(&devices[0].model);
        let sel = select_devices(
            SelectionPolicy::Random,
            5,
            &[0, 2],
            &devices,
            &cloud,
            &mut rng(1),
        );
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn random_selection_is_distinct_and_sized() {
        let devices = mk_devices(10);
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..10).collect();
        let sel = select_devices(
            SelectionPolicy::Random,
            4,
            &cands,
            &devices,
            &cloud,
            &mut rng(2),
        );
        assert_eq!(sel.len(), 4);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn oort_prefers_untrained_then_high_utility() {
        let mut devices = mk_devices(4);
        devices[0].oort_utility = Some(1.0);
        devices[1].oort_utility = Some(5.0);
        devices[2].oort_utility = None; // fresh: infinite utility
        devices[3].oort_utility = Some(3.0);
        let cloud = flatten(&devices[0].model);
        let sel = select_devices(
            SelectionPolicy::OortUtility,
            2,
            &[0, 1, 2, 3],
            &devices,
            &cloud,
            &mut rng(3),
        );
        assert_eq!(sel, vec![2, 1]);
    }

    #[test]
    fn cluster_guided_takes_each_clusters_best_round_robin() {
        // Utilities rank cluster 0 (devices 0–2) strictly above
        // cluster 1 (devices 3–5); a plain top-k would be all of
        // cluster 0 plus one, the round-robin must alternate.
        let util = [9.0f32, 8.0, 7.0, 1.0, 2.0, 3.0];
        let similarity = |_: usize| 0.0f32;
        let oort = move |m: usize| util[m];
        let cluster = |m: usize| u32::from(m >= 3);
        let scorers = CandidateScorers {
            similarity: &similarity,
            oort: &oort,
            cluster: Some(&cluster),
        };
        let cands: Vec<usize> = (0..6).collect();
        let mut scratch = SelectionScratch::new();
        let mut out = Vec::new();
        select_devices_scored(
            SelectionPolicy::ClusterGuided { clusters: 2 },
            4,
            &cands,
            &scorers,
            &mut rng(3),
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![0, 5, 1, 4]);
    }

    #[test]
    fn cluster_guided_fast_matches_reference() {
        let util = [4.0f32, 4.0, 4.0, 2.0, 2.0, 9.0, 1.0, 0.5];
        let similarity = |_: usize| 0.0f32;
        let oort = move |m: usize| util[m];
        let cluster = |m: usize| (m % 3) as u32;
        let scorers = CandidateScorers {
            similarity: &similarity,
            oort: &oort,
            cluster: Some(&cluster),
        };
        let cands: Vec<usize> = (0..8).collect();
        for k in [1, 3, 5, 7] {
            let mut scratch = SelectionScratch::new();
            let mut fast = Vec::new();
            select_devices_scored(
                SelectionPolicy::ClusterGuided { clusters: 3 },
                k,
                &cands,
                &scorers,
                &mut rng(17),
                &mut scratch,
                &mut fast,
            );
            let slow = select_devices_reference_scored(
                SelectionPolicy::ClusterGuided { clusters: 3 },
                k,
                &cands,
                &scorers,
                &mut rng(17),
            );
            assert_eq!(fast, slow, "k={k}");
            assert_eq!(fast.len(), k);
        }
    }

    #[test]
    fn least_similar_picks_low_alignment_devices() {
        let mut devices = mk_devices(3);
        let d = devices[0].model.param_count();
        // Cloud = all ones. Device 0 aligned with cloud (Δ ∝ +cloud),
        // device 1 orthogonal-ish, device 2 anti-aligned (Δ ∝ −cloud,
        // clipped to 0 utility).
        let cloud = vec![1.0f32; d];
        let mut w0 = vec![2.0f32; d]; // Δ = +1 ⇒ U = 1
        let mut w1 = vec![1.0f32; d];
        for (i, v) in w1.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.5 } else { -0.5 }; // Δ alternating ⇒ U ≈ 0
        }
        let w2 = vec![0.0f32; d]; // Δ = −1 ⇒ clipped U = 0
        set_params(&mut devices[0], &w0);
        set_params(&mut devices[1], &w1);
        set_params(&mut devices[2], &w2);
        w0.clear();

        let sel = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            2,
            &[0, 1, 2],
            &devices,
            &cloud,
            &mut rng(4),
        );
        // Device 0 (perfectly aligned) must NOT be selected.
        assert!(!sel.contains(&0), "selected {sel:?}");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn most_similar_is_the_mirror_image() {
        let mut devices = mk_devices(2);
        let d = devices[0].model.param_count();
        let cloud = vec![1.0f32; d];
        set_params(&mut devices[0], &vec![2.0; d]); // aligned
        set_params(&mut devices[1], &vec![0.0; d]); // anti-aligned
        let least = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            1,
            &[0, 1],
            &devices,
            &cloud,
            &mut rng(5),
        );
        let most = select_devices(
            SelectionPolicy::MostSimilarUpdate,
            1,
            &[0, 1],
            &devices,
            &cloud,
            &mut rng(5),
        );
        assert_eq!(least, vec![1]);
        assert_eq!(most, vec![0]);
    }

    #[test]
    fn update_similarity_is_clipped() {
        let mut devices = mk_devices(1);
        let d = devices[0].model.param_count();
        let cloud = vec![1.0f32; d];
        set_params(&mut devices[0], &vec![0.0; d]); // Δ = −cloud
        let norm = dot_slices(&cloud, &cloud);
        assert_eq!(update_similarity(&devices[0], &cloud, norm), 0.0);
        assert_eq!(update_similarity_reference(&devices[0], &cloud), 0.0);
    }

    #[test]
    fn fused_update_similarity_tracks_reference() {
        let mut devices = mk_devices(5);
        let d = devices[0].model.param_count();
        // Independent pseudo-random cloud vector: deltas are far from
        // zero, keeping the identity-based form well conditioned.
        let cloud: Vec<f32> = (0..d).map(|i| ((i * 31 + 7) as f32).sin()).collect();
        let norm = dot_slices(&cloud, &cloud);
        for dev in &devices {
            let fused = update_similarity(dev, &cloud, norm);
            let naive = update_similarity_reference(dev, &cloud);
            assert!((fused - naive).abs() <= 1e-5, "{fused} vs {naive}");
        }
        // Exact tie: a freshly synced device scores exactly zero on both
        // paths (the identity form cancels to ±0 exactly).
        set_params(&mut devices[0], &cloud);
        let norm0 = devices[0].flat_norm_sq();
        assert_eq!(update_similarity(&devices[0], &cloud, norm0), 0.0);
        assert_eq!(update_similarity_reference(&devices[0], &cloud), 0.0);
    }

    #[test]
    fn fast_selection_matches_reference_for_all_policies() {
        let mut devices = mk_devices(12);
        devices[3].oort_utility = Some(2.5);
        devices[7].oort_utility = Some(0.25);
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..12).collect();
        for policy in [
            SelectionPolicy::Random,
            SelectionPolicy::LeastSimilarUpdate,
            SelectionPolicy::MostSimilarUpdate,
            SelectionPolicy::OortUtility,
        ] {
            for k in [1, 4, 11] {
                let fast = select_devices(policy, k, &cands, &devices, &cloud, &mut rng(9));
                let slow =
                    select_devices_reference(policy, k, &cands, &devices, &cloud, &mut rng(9));
                assert_eq!(fast, slow, "{policy:?} k={k}");
            }
        }
    }

    #[test]
    fn selection_is_deterministic_given_the_same_rng_stream() {
        let devices = mk_devices(6);
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..6).collect();
        let a = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            3,
            &cands,
            &devices,
            &cloud,
            &mut rng(1),
        );
        let b = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            3,
            &cands,
            &devices,
            &cloud,
            &mut rng(1),
        );
        assert_eq!(a, b, "same seed, same selection");
    }

    #[test]
    fn exact_ties_are_broken_randomly_not_by_id() {
        // All devices identical (same model) ⇒ all scores tie; over many
        // draws every device must get selected sometimes.
        let devices = mk_devices(1);
        let base = devices.into_iter().next().unwrap();
        let devices: Vec<Device> = (0..8)
            .map(|id| Device::new(id, base.data().clone(), base.model.clone(), 7))
            .collect();
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..8).collect();
        let mut seen = vec![false; 8];
        let mut r = rng(5);
        for _ in 0..40 {
            for m in select_devices(
                SelectionPolicy::LeastSimilarUpdate,
                2,
                &cands,
                &devices,
                &cloud,
                &mut r,
            ) {
                seen[m] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "tie-break starved a device: {seen:?}"
        );
    }

    #[test]
    fn reusing_scratch_keeps_results_stable() {
        let devices = mk_devices(9);
        let cloud = flatten(&devices[0].model);
        let norm = dot_slices(&cloud, &cloud);
        let cands: Vec<usize> = (0..9).collect();
        let mut scratch = SelectionScratch::new();
        let mut out = Vec::new();
        let mut first = Vec::new();
        for round in 0..3 {
            select_devices_into(
                SelectionPolicy::MostSimilarUpdate,
                3,
                &cands,
                &devices,
                &cloud,
                norm,
                &mut rng(11),
                &mut scratch,
                &mut out,
            );
            if round == 0 {
                first = out.clone();
            } else {
                assert_eq!(out, first);
            }
        }
    }
}
