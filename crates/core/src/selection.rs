//! In-edge device selection (paper §4.3, Eqs. 10–12, plus baselines).

use crate::algorithms::SelectionPolicy;
use crate::device::Device;
use crate::similarity::similarity_utility;
use middle_nn::params::flatten;
use rand::rngs::StdRng;
use rand::Rng;

/// Selects up to `k` devices from `candidates` (indices into `devices`)
/// under `policy`.
///
/// When fewer than `k` candidates are present, all of them are selected —
/// the edge trains with whatever it has (devices can cluster on one edge
/// under high mobility).
pub fn select_devices(
    policy: SelectionPolicy,
    k: usize,
    candidates: &[usize],
    devices: &[Device],
    cloud_flat: &[f32],
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(k > 0, "K must be positive");
    if candidates.len() <= k {
        return candidates.to_vec();
    }
    match policy {
        SelectionPolicy::Random => sample_without_replacement(candidates, k, rng),
        SelectionPolicy::LeastSimilarUpdate => top_k_by(
            candidates,
            k,
            |m| -update_similarity(&devices[m], cloud_flat),
            rng,
        ),
        SelectionPolicy::MostSimilarUpdate => top_k_by(
            candidates,
            k,
            |m| update_similarity(&devices[m], cloud_flat),
            rng,
        ),
        SelectionPolicy::OortUtility => top_k_by(
            candidates,
            k,
            // Never-trained devices get +inf utility: Oort-style
            // exploration of fresh clients, required here because moved
            // devices have no history at the new edge.
            |m| devices[m].oort_utility.unwrap_or(f32::INFINITY),
            rng,
        ),
    }
}

/// The MIDDLE selection criterion `U(w_c, Δw_m)` with `Δw_m = w_m − w_c`
/// (Eqs. 10–11): how aligned the device's accumulated update is with the
/// current cloud model.
pub fn update_similarity(device: &Device, cloud_flat: &[f32]) -> f32 {
    let local = flatten(&device.model);
    assert_eq!(local.len(), cloud_flat.len(), "architecture mismatch");
    let delta: Vec<f32> = local.iter().zip(cloud_flat).map(|(l, c)| l - c).collect();
    similarity_utility(cloud_flat, &delta)
}

/// Top-`k` candidates by a score function. Ties are broken *randomly*:
/// exact ties are common (e.g. every freshly-synced device has `Δw = 0`
/// and hence utility 0), and a deterministic id tie-break would starve
/// high-id devices of participation.
fn top_k_by(
    candidates: &[usize],
    k: usize,
    score: impl Fn(usize) -> f32,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut scored: Vec<(f32, u32, usize)> = candidates
        .iter()
        .map(|&m| (score(m), rng.gen::<u32>(), m))
        .collect();
    // Descending score, random key on ties; NaN sorts last.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, _, m)| m).collect()
}

/// Uniform sample of `k` distinct items (partial Fisher–Yates).
fn sample_without_replacement(items: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool = items.to_vec();
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use middle_data::synthetic::{SyntheticSource, Task};
    use middle_nn::params::unflatten;
    use middle_nn::zoo;
    use middle_tensor::random::rng;

    fn mk_devices(n: usize) -> Vec<Device> {
        let src = SyntheticSource::new(Task::Mnist, 3);
        (0..n)
            .map(|id| {
                let data = src.generate_balanced(10, id as u64);
                let model = zoo::logistic(&Task::Mnist.spec(), &mut rng(id as u64));
                Device::new(id, data, model, 100 + id as u64)
            })
            .collect()
    }

    #[test]
    fn fewer_candidates_than_k_selects_all() {
        let devices = mk_devices(3);
        let cloud = flatten(&devices[0].model);
        let sel = select_devices(
            SelectionPolicy::Random,
            5,
            &[0, 2],
            &devices,
            &cloud,
            &mut rng(1),
        );
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn random_selection_is_distinct_and_sized() {
        let devices = mk_devices(10);
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..10).collect();
        let sel = select_devices(
            SelectionPolicy::Random,
            4,
            &cands,
            &devices,
            &cloud,
            &mut rng(2),
        );
        assert_eq!(sel.len(), 4);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn oort_prefers_untrained_then_high_utility() {
        let mut devices = mk_devices(4);
        devices[0].oort_utility = Some(1.0);
        devices[1].oort_utility = Some(5.0);
        devices[2].oort_utility = None; // fresh: infinite utility
        devices[3].oort_utility = Some(3.0);
        let cloud = flatten(&devices[0].model);
        let sel = select_devices(
            SelectionPolicy::OortUtility,
            2,
            &[0, 1, 2, 3],
            &devices,
            &cloud,
            &mut rng(3),
        );
        assert_eq!(sel, vec![2, 1]);
    }

    #[test]
    fn least_similar_picks_low_alignment_devices() {
        let mut devices = mk_devices(3);
        let d = devices[0].model.param_count();
        // Cloud = all ones. Device 0 aligned with cloud (Δ ∝ +cloud),
        // device 1 orthogonal-ish, device 2 anti-aligned (Δ ∝ −cloud,
        // clipped to 0 utility).
        let cloud = vec![1.0f32; d];
        let mut w0 = vec![2.0f32; d]; // Δ = +1 ⇒ U = 1
        let mut w1 = vec![1.0f32; d];
        for (i, v) in w1.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.5 } else { -0.5 }; // Δ alternating ⇒ U ≈ 0
        }
        let w2 = vec![0.0f32; d]; // Δ = −1 ⇒ clipped U = 0
        unflatten(&mut devices[0].model, &w0);
        unflatten(&mut devices[1].model, &w1);
        unflatten(&mut devices[2].model, &w2);
        w0.clear();

        let sel = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            2,
            &[0, 1, 2],
            &devices,
            &cloud,
            &mut rng(4),
        );
        // Device 0 (perfectly aligned) must NOT be selected.
        assert!(!sel.contains(&0), "selected {sel:?}");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn most_similar_is_the_mirror_image() {
        let mut devices = mk_devices(2);
        let d = devices[0].model.param_count();
        let cloud = vec![1.0f32; d];
        unflatten(&mut devices[0].model, &vec![2.0; d]); // aligned
        unflatten(&mut devices[1].model, &vec![0.0; d]); // anti-aligned
        let least = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            1,
            &[0, 1],
            &devices,
            &cloud,
            &mut rng(5),
        );
        let most = select_devices(
            SelectionPolicy::MostSimilarUpdate,
            1,
            &[0, 1],
            &devices,
            &cloud,
            &mut rng(5),
        );
        assert_eq!(least, vec![1]);
        assert_eq!(most, vec![0]);
    }

    #[test]
    fn update_similarity_is_clipped() {
        let mut devices = mk_devices(1);
        let d = devices[0].model.param_count();
        let cloud = vec![1.0f32; d];
        unflatten(&mut devices[0].model, &vec![0.0; d]); // Δ = −cloud
        assert_eq!(update_similarity(&devices[0], &cloud), 0.0);
    }

    #[test]
    fn selection_is_deterministic_given_the_same_rng_stream() {
        let devices = mk_devices(6);
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..6).collect();
        let a = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            3,
            &cands,
            &devices,
            &cloud,
            &mut rng(1),
        );
        let b = select_devices(
            SelectionPolicy::LeastSimilarUpdate,
            3,
            &cands,
            &devices,
            &cloud,
            &mut rng(1),
        );
        assert_eq!(a, b, "same seed, same selection");
    }

    #[test]
    fn exact_ties_are_broken_randomly_not_by_id() {
        // All devices identical (same model) ⇒ all scores tie; over many
        // draws every device must get selected sometimes.
        let devices = mk_devices(1);
        let base = devices.into_iter().next().unwrap();
        let devices: Vec<Device> = (0..8)
            .map(|id| Device::new(id, base.data().clone(), base.model.clone(), 7))
            .collect();
        let cloud = flatten(&devices[0].model);
        let cands: Vec<usize> = (0..8).collect();
        let mut seen = vec![false; 8];
        let mut r = rng(5);
        for _ in 0..40 {
            for m in select_devices(
                SelectionPolicy::LeastSimilarUpdate,
                2,
                &cands,
                &devices,
                &cloud,
                &mut r,
            ) {
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "tie-break starved a device: {seen:?}");
    }
}
