//! The device population plane: dense replicas or lazily-materialised
//! virtual devices (DESIGN.md §13).
//!
//! A hierarchical-FL step touches `K·E` devices out of `N`; at
//! million-device scale the other `N − K·E` replicas exist only to hold
//! the parameters the last cloud broadcast gave them. [`Population`]
//! makes that explicit:
//!
//! * [`PopulationMode::Dense`](crate::config::PopulationMode): the
//!   original `Vec<Device>` — every device fully materialised.
//! * [`PopulationMode::Lazy`](crate::config::PopulationMode): idle
//!   devices are [`StubMeta`] records (a version id into a shared,
//!   reference-counted [`VersionSlot`] table plus the device's carried
//!   scalar state), materialised into real [`Device`]s only when
//!   selected. A cloud broadcast pushes *one* new version slot and
//!   retargets every reached stub at it — the per-device dense model
//!   copy of the dense path becomes a version-id write — while reached
//!   resident replicas are demoted back to stubs, freeing their model,
//!   dataset and training scratch.
//!
//! The invariant making this exact: the simulation only ever mutates a
//! device's parameters while it participates, and every broadcast
//! overwrites the parameters of every reached device with the same flat
//! vector. An idle dense device therefore carries bitwise the flat
//! vector of the last broadcast that reached it, which is exactly what
//! its stub's version slot stores. The `population_plane` integration
//! tests pin dense and lazy runs to bitwise-identical RunRecords.

use crate::builder::SharedInputs;
use crate::checkpoint::{
    DeviceCheckpoint, DeviceSlotCheckpoint, PopulationCheckpoint, RngStateCheckpoint,
    VersionCheckpoint,
};
use crate::device::Device;
use crate::selection::update_similarity_flat;
use middle_nn::params::FlatView;
use middle_nn::serialize::Checkpoint;
use rand::rngs::StdRng;
use rayon::prelude::*;
use std::sync::Arc;

/// Which devices a cloud broadcast reaches.
pub enum Reached<'a> {
    /// Every device (the fault-free, uncompressed sync).
    All,
    /// Devices whose current edge's WAN link is up: device `m` is
    /// reached iff `up[edge_of[m]]`.
    Mask {
        /// Per-edge WAN-up flags.
        up: &'a [bool],
        /// Current device→edge assignment row (step index `cur`).
        edge_of: &'a [usize],
    },
}

impl Reached<'_> {
    fn hits(&self, m: usize) -> bool {
        match self {
            Reached::All => true,
            Reached::Mask { up, edge_of } => up[edge_of[m]],
        }
    }
}

/// A borrowed view of one device, cheap in either mode.
pub enum DeviceRef<'a> {
    /// The device is materialised.
    Resident(&'a Device),
    /// The device is a stub; its parameters are version `.0`'s flat.
    Stub(u32),
}

/// The carried state of a virtualized (non-resident) device.
#[derive(Debug, Clone)]
pub struct StubMeta {
    /// Index into the version table; the device's parameters are
    /// bitwise `versions[version].flat`.
    pub version: u32,
    /// Oort statistical utility from the most recent participation.
    pub oort_utility: Option<f32>,
    /// Time step of the most recent participation.
    pub last_participation: Option<usize>,
    /// Saved batch-sampling RNG state; `None` until the device first
    /// participates (a virgin device's stream is derived from the seed
    /// on materialisation, identical to dense construction).
    pub rng: Option<[u64; 4]>,
}

/// One reference-counted broadcast version: the flat parameter vector
/// every stub pointing here carries, plus the squared norm the dense
/// path would have cached for it.
pub struct VersionSlot {
    flat: Vec<f32>,
    norm_sq: f32,
    refs: usize,
}

impl VersionSlot {
    /// Whether any stub still references this version.
    pub fn is_live(&self) -> bool {
        self.refs > 0
    }
}

/// Lazy population state: stubs, resident replicas and the shared
/// version table.
pub struct LazyPopulation {
    inputs: Arc<SharedInputs>,
    seed: u64,
    /// Materialised replicas; `None` = virtualized.
    resident: Vec<Option<Box<Device>>>,
    /// Per-device carried scalar state, authoritative only while the
    /// device is a stub (residents carry their own).
    meta: Vec<StubMeta>,
    versions: Vec<VersionSlot>,
    resident_count: usize,
    peak_resident: usize,
}

impl LazyPopulation {
    fn new(inputs: Arc<SharedInputs>, seed: u64, num_devices: usize) -> Self {
        // Version 0 is the shared initial model; every device starts as
        // a stub of it. The slot's norm is computed by the same
        // `FlatView::of` a dense `Device::new` runs, so a virgin stub is
        // bitwise a virgin dense device.
        let init = FlatView::of(&inputs.init);
        let versions = vec![VersionSlot {
            flat: init.flat().to_vec(),
            norm_sq: init.norm_sq(),
            refs: num_devices,
        }];
        LazyPopulation {
            inputs,
            seed,
            resident: (0..num_devices).map(|_| None).collect(),
            meta: (0..num_devices)
                .map(|_| StubMeta {
                    version: 0,
                    oort_utility: None,
                    last_participation: None,
                    rng: None,
                })
                .collect(),
            versions,
            resident_count: 0,
            peak_resident: 0,
        }
    }

    fn unref(&mut self, version: usize) {
        let slot = &mut self.versions[version];
        debug_assert!(slot.refs > 0, "version refcount underflow");
        slot.refs -= 1;
        if slot.refs == 0 {
            // Tombstone: nobody carries this version any more; free the
            // dense vector (the slot index stays, ids are stable).
            slot.flat = Vec::new();
        }
    }

    fn materialize(&mut self, m: usize) {
        if self.resident[m].is_some() {
            return;
        }
        let meta = &self.meta[m];
        let version = meta.version as usize;
        // The device's local dataset is re-gathered from the shared base
        // on demand; `SharedInputs::build` skips the dense per-device
        // pre-gather in lazy mode.
        let data = match &self.inputs.base {
            Some(base) => base.subset(&self.inputs.partition.assignments[m]),
            None => self.inputs.device_data[m].clone(),
        };
        let mut dev = Device::new(m, data, self.inputs.init.clone(), self.seed);
        {
            let slot = &self.versions[version];
            debug_assert!(slot.is_live(), "stub references a tombstoned version");
            dev.load_flat(&slot.flat, slot.norm_sq);
        }
        dev.oort_utility = meta.oort_utility;
        dev.last_participation = meta.last_participation;
        if let Some(state) = meta.rng {
            dev.restore_rng(StdRng::from_state(state));
        }
        self.resident[m] = Some(Box::new(dev));
        self.resident_count += 1;
        self.peak_resident = self.peak_resident.max(self.resident_count);
        // Residents hold no version reference; their parameters live in
        // the replica now.
        self.unref(version);
    }

    fn apply_broadcast(&mut self, flat: &[f32], norm_sq: f32, reached: &Reached<'_>) {
        let id = self.versions.len();
        let version = u32::try_from(id).expect("version id overflow");
        self.versions.push(VersionSlot {
            flat: flat.to_vec(),
            norm_sq,
            refs: 0,
        });
        for m in 0..self.meta.len() {
            if !reached.hits(m) {
                continue;
            }
            if let Some(dev) = self.resident[m].take() {
                // Demote: the broadcast overwrote the replica's
                // parameters with the shared version, so the replica is
                // redundant — save its scalar state and free it.
                self.meta[m] = StubMeta {
                    version,
                    oort_utility: dev.oort_utility,
                    last_participation: dev.last_participation,
                    rng: Some(dev.rng_ref().state()),
                };
                self.resident_count -= 1;
            } else {
                let old = self.meta[m].version as usize;
                self.meta[m].version = version;
                self.unref(old);
            }
            self.versions[id].refs += 1;
        }
        if self.versions[id].refs == 0 {
            // The mask covered no devices; drop the payload immediately.
            self.versions[id].flat = Vec::new();
        }
    }

    /// Live (still-referenced) version slots, as `(id, slot)`.
    pub fn live_versions(&self) -> impl Iterator<Item = (u32, &VersionSlot)> {
        self.versions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_live())
            .map(|(i, s)| (i as u32, s))
    }

    fn checkpoint(&self) -> PopulationCheckpoint {
        PopulationCheckpoint {
            versions: self
                .live_versions()
                .map(|(id, s)| VersionCheckpoint {
                    id,
                    flat: s.flat.clone(),
                    norm_sq: s.norm_sq,
                })
                .collect(),
            devices: (0..self.meta.len())
                .map(|m| match &self.resident[m] {
                    Some(dev) => DeviceSlotCheckpoint::Resident {
                        device: DeviceCheckpoint {
                            params: Checkpoint::capture(&dev.model),
                            oort_utility: dev.oort_utility,
                            last_participation: dev.last_participation,
                            rng: RngStateCheckpoint::capture(dev.rng_ref()),
                        },
                    },
                    None => {
                        let meta = &self.meta[m];
                        DeviceSlotCheckpoint::Stub {
                            version: meta.version,
                            oort_utility: meta.oort_utility,
                            last_participation: meta.last_participation,
                            rng: meta.rng.map(|s| RngStateCheckpoint {
                                s0: s[0],
                                s1: s[1],
                                s2: s[2],
                                s3: s[3],
                            }),
                        }
                    }
                })
                .collect(),
        }
    }

    fn restore(&mut self, ck: &PopulationCheckpoint) -> Result<(), String> {
        if ck.devices.len() != self.meta.len() {
            return Err(format!(
                "population checkpoint holds {} devices (expected {})",
                ck.devices.len(),
                self.meta.len()
            ));
        }
        let len = ck
            .versions
            .iter()
            .map(|v| v.id as usize + 1)
            .max()
            .unwrap_or(0);
        let mut versions: Vec<VersionSlot> = (0..len)
            .map(|_| VersionSlot {
                flat: Vec::new(),
                norm_sq: 0.0,
                refs: 0,
            })
            .collect();
        for v in &ck.versions {
            let slot = &mut versions[v.id as usize];
            slot.flat = v.flat.clone();
            slot.norm_sq = v.norm_sq;
        }
        let mut resident: Vec<Option<Box<Device>>> = (0..ck.devices.len()).map(|_| None).collect();
        let mut meta: Vec<StubMeta> = Vec::with_capacity(ck.devices.len());
        let mut resident_count = 0usize;
        for (m, slot) in ck.devices.iter().enumerate() {
            match slot {
                DeviceSlotCheckpoint::Stub {
                    version,
                    oort_utility,
                    last_participation,
                    rng,
                } => {
                    let v = *version as usize;
                    if v >= versions.len() || versions[v].flat.is_empty() {
                        return Err(format!("stub {m} references missing version {version}"));
                    }
                    versions[v].refs += 1;
                    meta.push(StubMeta {
                        version: *version,
                        oort_utility: *oort_utility,
                        last_participation: *last_participation,
                        rng: rng.as_ref().map(|r| [r.s0, r.s1, r.s2, r.s3]),
                    });
                }
                DeviceSlotCheckpoint::Resident { device } => {
                    let data = match &self.inputs.base {
                        Some(base) => base.subset(&self.inputs.partition.assignments[m]),
                        None => self.inputs.device_data[m].clone(),
                    };
                    let mut dev = Device::new(m, data, self.inputs.init.clone(), self.seed);
                    device.params.restore(&mut dev.model)?;
                    dev.refresh_flat();
                    dev.oort_utility = device.oort_utility;
                    dev.last_participation = device.last_participation;
                    dev.restore_rng(device.rng.restore());
                    resident[m] = Some(Box::new(dev));
                    resident_count += 1;
                    meta.push(StubMeta {
                        version: 0,
                        oort_utility: None,
                        last_participation: None,
                        rng: None,
                    });
                }
            }
        }
        self.versions = versions;
        self.resident = resident;
        self.meta = meta;
        self.resident_count = resident_count;
        self.peak_resident = resident_count;
        Ok(())
    }
}

/// The simulation's device population, dense or lazy.
pub enum Population {
    /// Every device fully materialised (the original representation).
    Dense(Vec<Device>),
    /// Stubs + shared version table + resident working set.
    Lazy(LazyPopulation),
}

impl Population {
    /// Builds the dense population: one full replica per device.
    pub(crate) fn dense(devices: Vec<Device>) -> Self {
        Population::Dense(devices)
    }

    /// Builds the lazy population: every device a stub of version 0
    /// (the shared initial model).
    pub(crate) fn lazy(inputs: Arc<SharedInputs>, seed: u64, num_devices: usize) -> Self {
        Population::Lazy(LazyPopulation::new(inputs, seed, num_devices))
    }

    /// Number of devices, resident or not.
    pub fn len(&self) -> usize {
        match self {
            Population::Dense(d) => d.len(),
            Population::Lazy(p) => p.meta.len(),
        }
    }

    /// Whether the population holds no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, Population::Dense(_))
    }

    /// Currently materialised replicas (equals `len()` when dense).
    pub fn resident_count(&self) -> usize {
        match self {
            Population::Dense(d) => d.len(),
            Population::Lazy(p) => p.resident_count,
        }
    }

    /// High-water mark of materialised replicas over the run.
    pub fn peak_resident(&self) -> usize {
        match self {
            Population::Dense(d) => d.len(),
            Population::Lazy(p) => p.peak_resident,
        }
    }

    /// The dense device slice.
    ///
    /// # Panics
    /// Panics on a lazy population (idle devices have no replica to
    /// borrow); scale-aware callers use [`Population::view`].
    pub fn dense_slice(&self) -> &[Device] {
        match self {
            Population::Dense(d) => d,
            Population::Lazy(_) => panic!("lazy population has no dense device slice"),
        }
    }

    pub(crate) fn dense_slice_mut(&mut self) -> &mut [Device] {
        match self {
            Population::Dense(d) => d,
            Population::Lazy(_) => panic!("lazy population has no dense device slice"),
        }
    }

    /// A cheap per-device view: the replica when materialised, the
    /// version id when virtualized.
    pub fn view(&self, m: usize) -> DeviceRef<'_> {
        match self {
            Population::Dense(d) => DeviceRef::Resident(&d[m]),
            Population::Lazy(p) => match &p.resident[m] {
                Some(dev) => DeviceRef::Resident(dev),
                None => DeviceRef::Stub(p.meta[m].version),
            },
        }
    }

    /// The device's Oort utility (carried by the stub while idle).
    pub fn oort_utility(&self, m: usize) -> Option<f32> {
        match self.view(m) {
            DeviceRef::Resident(dev) => dev.oort_utility,
            DeviceRef::Stub(_) => match self {
                Population::Lazy(p) => p.meta[m].oort_utility,
                Population::Dense(_) => unreachable!("dense devices are always resident"),
            },
        }
    }

    /// The flat parameter vector of version `v` (lazy only).
    pub fn version_flat(&self, v: u32) -> &[f32] {
        match self {
            Population::Dense(_) => panic!("dense population has no version table"),
            Population::Lazy(p) => {
                let slot = &p.versions[v as usize];
                debug_assert!(slot.is_live(), "reading a tombstoned version");
                &slot.flat
            }
        }
    }

    /// Scores every live version against the cloud model with the fast
    /// fused similarity kernel, indexed by version id (`NaN` for
    /// tombstones). One O(V·P) pass replaces per-stub O(P) scoring:
    /// every stub of a version shares its score bitwise, exactly as
    /// every idle dense device holding that broadcast shares one.
    pub fn version_scores(&self, cloud_flat: &[f32], cloud_norm_sq: f32, out: &mut Vec<f32>) {
        out.clear();
        if let Population::Lazy(p) = self {
            out.extend(p.versions.iter().map(|s| {
                if s.is_live() {
                    update_similarity_flat(&s.flat, s.norm_sq, cloud_flat, cloud_norm_sq)
                } else {
                    f32::NAN
                }
            }));
        }
    }

    /// Ensures device `m` is materialised (no-op when dense or already
    /// resident).
    pub fn ensure_resident(&mut self, m: usize) {
        if let Population::Lazy(p) = self {
            p.materialize(m);
        }
    }

    /// The materialised device `m`.
    ///
    /// # Panics
    /// Panics when `m` is virtualized (callers touch only selected
    /// devices, which phase 1 materialises).
    pub fn get(&self, m: usize) -> &Device {
        match self {
            Population::Dense(d) => &d[m],
            Population::Lazy(p) => p.resident[m]
                .as_deref()
                .expect("device not resident; ensure_resident first"),
        }
    }

    /// Mutable access to the materialised device `m`.
    ///
    /// # Panics
    /// Panics when `m` is virtualized.
    pub fn get_mut(&mut self, m: usize) -> &mut Device {
        match self {
            Population::Dense(d) => &mut d[m],
            Population::Lazy(p) => p.resident[m]
                .as_deref_mut()
                .expect("device not resident; ensure_resident first"),
        }
    }

    /// Gathers disjoint `&mut Device` references for a strictly
    /// ascending id list of materialised devices, so the training phase
    /// parallelises over exactly the participants without re-scanning
    /// the population.
    pub fn gather_mut(&mut self, ids: &[usize]) -> Vec<&mut Device> {
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "participant ids must be strictly ascending"
        );
        if let Some(&last) = ids.last() {
            assert!(last < self.len(), "participant id out of range");
        }
        match self {
            Population::Dense(d) => {
                let ptr = d.as_mut_ptr();
                // SAFETY: the ids are strictly ascending (hence
                // distinct) and in range, so every produced reference
                // aliases a unique element.
                ids.iter().map(|&m| unsafe { &mut *ptr.add(m) }).collect()
            }
            Population::Lazy(p) => {
                let ptr = p.resident.as_mut_ptr();
                ids.iter()
                    .map(|&m| {
                        // SAFETY: as above — distinct, in-range slots.
                        unsafe { &mut *ptr.add(m) }
                            .as_deref_mut()
                            .expect("participant not resident")
                    })
                    .collect()
            }
        }
    }

    /// Applies a cloud broadcast: every reached device's parameters
    /// become `flat` (with cached norm `norm_sq`). Dense: a parallel
    /// per-replica copy. Lazy: one new version slot; reached stubs are
    /// retargeted at it and reached residents demoted back to stubs —
    /// the per-device dense copy becomes a version-id write, and the
    /// resident working set resets.
    pub fn apply_broadcast(&mut self, flat: &[f32], norm_sq: f32, reached: Reached<'_>) {
        match self {
            Population::Dense(devices) => devices.par_iter_mut().for_each(|d| {
                if reached.hits(d.id) {
                    d.load_flat(flat, norm_sq);
                }
            }),
            Population::Lazy(p) => p.apply_broadcast(flat, norm_sq, &reached),
        }
    }

    /// Captures the lazy population's state (`None` when dense — the
    /// dense path serialises its replicas in the checkpoint's `devices`
    /// field, byte-identical to pre-plane checkpoints).
    pub(crate) fn checkpoint(&self) -> Option<PopulationCheckpoint> {
        match self {
            Population::Dense(_) => None,
            Population::Lazy(p) => Some(p.checkpoint()),
        }
    }

    /// Restores a lazy population checkpoint.
    ///
    /// # Errors
    /// Returns a description when the checkpoint's shape disagrees or a
    /// stub references a missing version.
    pub(crate) fn restore(&mut self, ck: &PopulationCheckpoint) -> Result<(), String> {
        match self {
            Population::Dense(_) => {
                Err("population checkpoint applied to a dense simulation".into())
            }
            Population::Lazy(p) => p.restore(ck),
        }
    }
}
