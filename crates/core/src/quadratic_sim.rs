//! Mobility-driven HFL on the strongly-convex quadratic test-bed —
//! the setting of Theorem 1 (full participation, fixed α), used to
//! validate the bound numerically and to draw Figure 3's parameter-space
//! trajectories.

use crate::theory::{BoundParams, QuadraticProblem};
use middle_mobility::{generate_markov_hop, generate_markov_hop_homed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration of a quadratic HFL run.
#[derive(Debug, Clone, Copy)]
pub struct QuadraticHflConfig {
    /// Number of edges.
    pub edges: usize,
    /// Time steps to simulate.
    pub steps: usize,
    /// Local SGD steps per time step (`I`).
    pub local_steps: usize,
    /// Cloud sync interval (`T_c`).
    pub cloud_interval: usize,
    /// Fixed on-device aggregation coefficient `α` (weight on the edge
    /// model), per the Theorem 1 simplification.
    pub alpha: f32,
    /// Global mobility probability `P`.
    pub p: f64,
    /// Additive gradient-noise standard deviation `σ` (Assumption 3).
    pub noise_std: f32,
    /// Theorem 1 learning-rate schedule when `true`; otherwise a fixed
    /// small step `1/(4β)`.
    pub theorem_lr: bool,
    /// RNG seed.
    pub seed: u64,
    /// Cluster devices by home edge (cluster A on the first half of the
    /// edges, cluster B on the second) with home-biased movement, so
    /// edge-level objectives are persistently Non-IID. `false` = uniform
    /// memoryless hopping.
    pub homed: bool,
    /// Algorithm-1 semantics when `true`: every participating device
    /// downloads the edge model each step. When `false`, the dynamics
    /// match the Theorem 1 analysis: devices continue from their own
    /// local models, and *the on-device blend upon movement is the only
    /// cross-device homogenization between cloud syncs* — this is what
    /// makes the divergence term scale like `1/(α(1−α)P)`.
    pub download_each_step: bool,
}

impl Default for QuadraticHflConfig {
    fn default() -> Self {
        QuadraticHflConfig {
            edges: 4,
            steps: 200,
            local_steps: 5,
            cloud_interval: 10,
            alpha: 0.5,
            p: 0.5,
            noise_std: 0.1,
            theorem_lr: true,
            seed: 42,
            homed: false,
            download_each_step: true,
        }
    }
}

/// Result of a quadratic HFL run.
#[derive(Debug, Clone)]
pub struct QuadraticHflResult {
    /// Optimality gap `F(w̄^t) − F(w*)` of the virtual global model per
    /// time step.
    pub gap_trajectory: Vec<f32>,
    /// Final gap.
    pub final_gap: f32,
    /// Per-step positions of the virtual global model (for Figure 3's
    /// 2-D parameter-space plots; only the first two coordinates).
    pub global_path: Vec<[f32; 2]>,
    /// Per-step dispersion `Σ h_m ‖w_m − w̄‖²` of local models around the
    /// virtual global — the divergence term of Lemma 1 that on-device
    /// aggregation provably shrinks.
    pub dispersion: Vec<f32>,
    /// Per-step *start-point* divergence `Σ h_m ‖ŵ_m − w̄‖²` — the unique
    /// term `E[Σ h_m ‖ŵ^{t−1}_m − w̄^{t−1}‖²]` of the Theorem 1 proof
    /// sketch (Eq. 19), bounded by the `α(1−α)P` mobility term.
    pub start_dispersion: Vec<f32>,
}

/// Simulates Theorem 1's setting: full device participation, fixed-α
/// on-device aggregation for moved devices, FedAvg edge/cloud
/// aggregation, noisy quadratic gradients.
pub fn simulate_quadratic_hfl(
    problem: &QuadraticProblem,
    cfg: &QuadraticHflConfig,
) -> QuadraticHflResult {
    assert!(cfg.edges > 0 && cfg.steps > 0 && cfg.local_steps > 0);
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha in [0, 1]");
    let devices = problem.devices();
    let dim = problem.dim();
    let trace = if cfg.homed {
        let half = (cfg.edges / 2).max(1);
        let homes: Vec<usize> = (0..devices)
            .map(|m| {
                let cluster = m % 2;
                let slot = (m / 2) % half;
                (cluster * half + slot).min(cfg.edges - 1)
            })
            .collect();
        generate_markov_hop_homed(cfg.edges, &homes, cfg.steps, cfg.p, 0.6, cfg.seed)
    } else {
        generate_markov_hop(cfg.edges, devices, cfg.steps, cfg.p, cfg.seed)
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E3779B97F4A7C15);
    let noise = Normal::new(0.0f32, cfg.noise_std).expect("valid noise std");

    let bound = BoundParams {
        beta: problem.beta(),
        mu: problem.mu(),
        b: 0.0,
        g2: 0.0,
        local_steps: cfg.local_steps,
        alpha: cfg.alpha.clamp(1e-3, 1.0 - 1e-3),
        p: cfg.p.max(1e-3) as f32,
        initial_gap: 0.0,
    };

    // All models start at the origin.
    let mut cloud = vec![0.0f32; dim];
    let mut edge_models = vec![cloud.clone(); cfg.edges];
    let mut local_models = vec![cloud.clone(); devices];

    let mut gap_trajectory = Vec::with_capacity(cfg.steps);
    let mut global_path = Vec::with_capacity(cfg.steps);
    let mut dispersion = Vec::with_capacity(cfg.steps);
    let mut grad = vec![0.0f32; dim];

    let mut start_dispersion = Vec::with_capacity(cfg.steps);
    for t in 0..cfg.steps {
        let eta = if cfg.theorem_lr {
            bound.learning_rate(t)
        } else {
            1.0 / (4.0 * problem.beta())
        };

        // Full participation: every device trains within its edge.
        let mut start_points: Vec<Vec<f32>> = Vec::with_capacity(devices);
        for (m, lm) in local_models.iter_mut().enumerate() {
            let n = trace.edge_of(t, m);
            let mut w: Vec<f32> = if trace.moved(t, m) {
                edge_models[n]
                    .iter()
                    .zip(lm.iter())
                    .map(|(e, l)| cfg.alpha * e + (1.0 - cfg.alpha) * l)
                    .collect()
            } else if cfg.download_each_step {
                edge_models[n].clone()
            } else {
                lm.clone()
            };
            start_points.push(w.clone());
            for _ in 0..cfg.local_steps {
                problem.device_grad(m, &w, &mut grad);
                for (x, g) in w.iter_mut().zip(&grad) {
                    *x -= eta * (g + noise.sample(&mut rng));
                }
            }
            *lm = w;
        }

        // Start-point divergence around the mean start point (Eq. 19).
        let mut sbar = vec![0.0f32; dim];
        for (m, sp) in start_points.iter().enumerate() {
            for (a, x) in sbar.iter_mut().zip(sp) {
                *a += problem.weights[m] * x;
            }
        }
        let sdisp: f32 = start_points
            .iter()
            .enumerate()
            .map(|(m, sp)| {
                let d2: f32 = sp.iter().zip(&sbar).map(|(x, g)| (x - g) * (x - g)).sum();
                problem.weights[m] * d2
            })
            .sum();
        start_dispersion.push(sdisp);

        // Edge aggregation: weighted mean of member locals.
        for (n, em) in edge_models.iter_mut().enumerate() {
            let members = trace.devices_at(t, n);
            if members.is_empty() {
                continue;
            }
            let mut acc = vec![0.0f32; dim];
            let mut wsum = 0.0f32;
            for &m in &members {
                let hw = problem.weights[m];
                wsum += hw;
                for (a, x) in acc.iter_mut().zip(&local_models[m]) {
                    *a += hw * x;
                }
            }
            for a in &mut acc {
                *a /= wsum;
            }
            *em = acc;
        }

        // Cloud sync.
        if (t + 1) % cfg.cloud_interval == 0 {
            let mut acc = vec![0.0f32; dim];
            for em in &edge_models {
                for (a, x) in acc.iter_mut().zip(em) {
                    *a += x / cfg.edges as f32;
                }
            }
            cloud = acc;
            for em in &mut edge_models {
                em.clone_from(&cloud);
            }
            for lm in &mut local_models {
                lm.clone_from(&cloud);
            }
        }

        // Virtual global = weighted mean of all locals (Eq. 13).
        let mut vg = vec![0.0f32; dim];
        for (m, lm) in local_models.iter().enumerate() {
            for (a, x) in vg.iter_mut().zip(lm) {
                *a += problem.weights[m] * x;
            }
        }
        gap_trajectory.push(problem.gap(&vg));
        global_path.push([vg[0], if dim > 1 { vg[1] } else { 0.0 }]);
        let disp: f32 = (0..devices)
            .map(|m| {
                let d2: f32 = local_models[m]
                    .iter()
                    .zip(&vg)
                    .map(|(x, g)| (x - g) * (x - g))
                    .sum();
                problem.weights[m] * d2
            })
            .sum();
        dispersion.push(disp);
    }

    QuadraticHflResult {
        final_gap: *gap_trajectory.last().expect("at least one step"),
        gap_trajectory,
        global_path,
        dispersion,
        start_dispersion,
    }
}

/// Builds the two-cluster Non-IID quadratic problem used by the theory
/// experiments: half the devices centred at `+c`, half at `−c`, with
/// mild curvature heterogeneity. Global optimum ≈ origin; edge optima
/// differ, so mobility genuinely transports information.
pub fn two_cluster_problem(devices: usize, dim: usize, spread: f32) -> QuadraticProblem {
    assert!(devices >= 2 && dim >= 1);
    let mut curvatures = Vec::with_capacity(devices);
    let mut centers = Vec::with_capacity(devices);
    for m in 0..devices {
        curvatures.push(if m % 3 == 0 { 1.5 } else { 1.0 });
        let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
        let mut c = vec![0.0f32; dim];
        c[0] = sign * spread;
        if dim > 1 {
            c[1] = sign * spread * 0.5;
        }
        centers.push(c);
    }
    QuadraticProblem::new(curvatures, centers, vec![1.0; devices])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_toward_optimum() {
        let q = two_cluster_problem(10, 2, 2.0);
        let cfg = QuadraticHflConfig {
            steps: 300,
            ..Default::default()
        };
        let res = simulate_quadratic_hfl(&q, &cfg);
        let early = res.gap_trajectory[5];
        assert!(
            res.final_gap < early * 0.5,
            "gap {early} -> {}",
            res.final_gap
        );
    }

    #[test]
    fn higher_mobility_gives_lower_final_gap() {
        // Remark 1's prediction, averaged over seeds to kill noise.
        let q = two_cluster_problem(20, 2, 3.0);
        let mean_gap = |p: f64| -> f32 {
            (0..5)
                .map(|s| {
                    let cfg = QuadraticHflConfig {
                        p,
                        steps: 150,
                        cloud_interval: 30,
                        seed: 100 + s,
                        ..Default::default()
                    };
                    simulate_quadratic_hfl(&q, &cfg).final_gap
                })
                .sum::<f32>()
                / 5.0
        };
        let lo = mean_gap(0.05);
        let hi = mean_gap(0.8);
        assert!(hi < lo, "P=0.8 gap {hi} should beat P=0.05 gap {lo}");
    }

    #[test]
    fn measured_gap_respects_theorem_bound_shape() {
        // The bound is loose, but the measured gap must sit below it for
        // matched constants.
        let q = two_cluster_problem(10, 2, 1.0);
        let cfg = QuadraticHflConfig {
            steps: 200,
            noise_std: 0.05,
            ..Default::default()
        };
        let res = simulate_quadratic_hfl(&q, &cfg);
        let params = BoundParams {
            beta: q.beta(),
            mu: q.mu(),
            b: 0.05 * 0.05,
            g2: 25.0,
            local_steps: cfg.local_steps,
            alpha: cfg.alpha,
            p: cfg.p as f32,
            initial_gap: q.gap(&[0.0; 2]) * 2.0 / q.mu(),
        };
        for (t, &gap) in res.gap_trajectory.iter().enumerate().skip(20) {
            assert!(
                gap <= params.bound(t),
                "step {t}: measured {gap} exceeds bound {}",
                params.bound(t)
            );
        }
    }

    #[test]
    fn global_path_has_expected_length() {
        let q = two_cluster_problem(4, 2, 1.0);
        let cfg = QuadraticHflConfig {
            steps: 50,
            ..Default::default()
        };
        let res = simulate_quadratic_hfl(&q, &cfg);
        assert_eq!(res.global_path.len(), 50);
        assert_eq!(res.gap_trajectory.len(), 50);
    }

    #[test]
    fn two_cluster_optimum_is_near_origin() {
        let q = two_cluster_problem(10, 2, 2.0);
        let w = q.optimum();
        assert!(w[0].abs() < 0.5, "{w:?}");
    }

    #[test]
    fn zero_noise_deterministic_run_reaches_tiny_gap() {
        let q = two_cluster_problem(6, 2, 1.0);
        let cfg = QuadraticHflConfig {
            noise_std: 0.0,
            steps: 400,
            cloud_interval: 5,
            p: 0.5,
            ..Default::default()
        };
        let res = simulate_quadratic_hfl(&q, &cfg);
        assert!(res.final_gap < 0.05, "final gap {}", res.final_gap);
    }
}
