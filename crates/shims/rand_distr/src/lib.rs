//! Offline drop-in stand-in for the `rand_distr` crate.
//!
//! Provides the two distributions this workspace samples — [`Normal`]
//! (Box–Muller–Marsaglia polar method) and [`Dirichlet`]
//! (Marsaglia–Tsang gamma sampling, normalised) — behind the same
//! `Distribution::sample` interface as the real crate.

use rand::{Rng, RngCore};

/// A sampleable distribution, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Floating-point scalars the distributions are generic over.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64` (used internally for the core samplers).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// One standard-normal draw via the Marsaglia polar method.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates the distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, ParamError> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(ParamError("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let z = standard_normal(rng);
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// One `Gamma(shape, 1)` draw via Marsaglia–Tsang (with the `U^{1/a}`
/// boost for `shape < 1`).
fn gamma<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x * x * x * x
            || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln())
        {
            return d * v3;
        }
    }
}

/// Dirichlet distribution over the simplex, parameterised by
/// concentration `alpha` per component.
#[derive(Debug, Clone)]
pub struct Dirichlet<F: Float> {
    alpha: Vec<F>,
}

impl<F: Float> Dirichlet<F> {
    /// Creates the distribution; needs at least two components, all with
    /// positive finite concentration.
    pub fn new(alpha: &[F]) -> Result<Self, ParamError> {
        if alpha.len() < 2 {
            return Err(ParamError("Dirichlet needs at least two components"));
        }
        for a in alpha {
            let a = a.to_f64();
            if !a.is_finite() || a <= 0.0 {
                return Err(ParamError("Dirichlet alpha must be positive and finite"));
            }
        }
        Ok(Dirichlet {
            alpha: alpha.to_vec(),
        })
    }
}

impl<F: Float> Distribution<Vec<F>> for Dirichlet<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<F> {
        let draws: Vec<f64> = self
            .alpha
            .iter()
            .map(|a| gamma(a.to_f64(), rng).max(f64::MIN_POSITIVE))
            .collect();
        let total: f64 = draws.iter().sum();
        draws.iter().map(|g| F::from_f64(g / total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_match() {
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
    }

    #[test]
    fn dirichlet_samples_live_on_the_simplex() {
        let dist = Dirichlet::new(&[0.3f32, 0.3, 0.3, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let p = dist.sample(&mut rng);
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let total: f32 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-4, "sum {total}");
        }
    }

    #[test]
    fn dirichlet_low_alpha_is_sparse_high_alpha_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let sparse = Dirichlet::new(&vec![0.05f32; 8]).unwrap();
        let max_share: f32 = (0..50)
            .map(|_| {
                sparse
                    .sample(&mut rng)
                    .into_iter()
                    .fold(0.0f32, f32::max)
            })
            .sum::<f32>()
            / 50.0;
        assert!(max_share > 0.7, "sparse max share {max_share}");

        let flat = Dirichlet::new(&vec![100.0f32; 8]).unwrap();
        let flat_max: f32 = (0..50)
            .map(|_| flat.sample(&mut rng).into_iter().fold(0.0f32, f32::max))
            .sum::<f32>()
            / 50.0;
        assert!(flat_max < 0.25, "flat max share {flat_max}");
    }

    #[test]
    fn dirichlet_rejects_bad_alpha() {
        assert!(Dirichlet::new(&[1.0f32]).is_err());
        assert!(Dirichlet::new(&[1.0f32, 0.0]).is_err());
    }
}
