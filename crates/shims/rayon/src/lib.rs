//! Offline drop-in stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the parallel-iterator surface it actually uses:
//! `par_iter` / `par_iter_mut` / `par_chunks_mut` with the `enumerate`,
//! `zip`, `map`, `for_each` and `collect` combinators.
//!
//! Work is executed fork-join style on a lazily-started persistent
//! thread pool (`available_parallelism() - 1` workers; the calling
//! thread always runs one chunk itself). Items are split into one
//! contiguous chunk per thread, which matches how the workspace uses
//! rayon: many same-sized units of work with no nested parallelism.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

/// Everything a caller needs in scope for the `par_*` methods.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParMap, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------
// Thread pool.
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads. Nested parallel calls run inline on
    /// the worker instead of re-entering the pool — without
    /// work-stealing, a worker waiting on an inner fork-join could
    /// deadlock once every worker does the same.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct Pool {
    tx: Mutex<mpsc::Sender<Job>>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(0)
            .max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("shim-rayon-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|w| w.set(true));
                    loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn worker thread");
        }
        Pool {
            tx: Mutex::new(tx),
            workers,
        }
    })
}

/// Countdown latch: `wait` blocks until `count_down` has been called
/// `n` times.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicUsize,
    /// First pooled panic payload, rethrown by the caller so the
    /// original panic message (e.g. a failed training assert) survives
    /// instead of collapsing into a generic "a task panicked".
    payload: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicUsize::new(0),
            payload: Mutex::new(None),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }
}

/// Runs the given tasks to completion, one inline on the calling thread
/// and the rest on the pool. Blocks until every task has finished, so
/// tasks may safely borrow from the caller's stack.
fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    if n == 1 || IS_POOL_WORKER.with(|w| w.get()) {
        for task in tasks {
            task();
        }
        return;
    }
    let latch = std::sync::Arc::new(Latch::new(n - 1));
    let mut iter = tasks.into_iter();
    let first = iter.next().expect("at least two tasks");
    for task in iter {
        // SAFETY: `run_tasks` does not return until `latch.wait()` has
        // observed every submitted task's completion (count_down runs
        // even when the task panics), so the borrowed environment
        // strictly outlives the 'static-erased closure.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let latch = latch.clone();
        let wrapped: Job = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                latch.panicked.fetch_add(1, Ordering::SeqCst);
                let mut slot = latch.payload.lock().expect("latch poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            latch.count_down();
        });
        pool()
            .tx
            .lock()
            .expect("pool poisoned")
            .send(wrapped)
            .expect("pool workers alive");
    }
    let inline_result = catch_unwind(AssertUnwindSafe(first));
    latch.wait();
    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    if latch.panicked.load(Ordering::SeqCst) > 0 {
        let pooled = latch
            .payload
            .lock()
            .expect("latch poisoned")
            .take()
            .unwrap_or_else(|| Box::new("a parallel task panicked".to_string()));
        resume_unwind(pooled);
    }
}

/// Splits `items` into at most `parts` contiguous runs of near-equal
/// length.
fn split_vec<I>(mut items: Vec<I>, parts: usize) -> Vec<Vec<I>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    // Drain from the back so each drain is O(chunk).
    for p in (0..parts).rev() {
        let len = base + usize::from(p < extra);
        let tail: Vec<I> = items.split_off(items.len() - len);
        out.push(tail);
    }
    out.reverse();
    out
}

// ---------------------------------------------------------------------
// Parallel iterators.
// ---------------------------------------------------------------------

/// An eager parallel iterator over already-materialised items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zips two parallel iterators, truncating to the shorter.
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Applies `f` to every item, one contiguous chunk per pool thread.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let threads = pool().workers + 1;
        if self.items.len() <= 1 || threads == 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let chunks = split_vec(self.items, threads);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .map(|chunk| {
                Box::new(move || {
                    for item in chunk {
                        f(item);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
    }

    /// Lazily maps items; execution happens at `collect`.
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; runs on `collect`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Runs the map in parallel, preserving input order.
    pub fn collect<O>(self) -> Vec<O>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let threads = pool().workers + 1;
        if self.items.len() <= 1 || threads == 1 {
            return self.items.into_iter().map(self.f).collect();
        }
        let chunks = split_vec(self.items, threads);
        let f = &self.f;
        let results: Mutex<Vec<(usize, Vec<O>)>> = Mutex::new(Vec::new());
        let results_ref = &results;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .enumerate()
            .map(|(ci, chunk)| {
                Box::new(move || {
                    let mapped: Vec<O> = chunk.into_iter().map(f).collect();
                    results_ref
                        .lock()
                        .expect("collect mutex poisoned")
                        .push((ci, mapped));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
        let mut parts = results.into_inner().expect("collect mutex poisoned");
        parts.sort_by_key(|(ci, _)| *ci);
        parts.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// `par_iter` on shared slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item reference type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` on mutable slices and vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// The per-item mutable reference type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        items.par_iter().for_each(|&i| {
            counter.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0usize; 257];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn zip_pairs_in_order() {
        let mut a = vec![0u32; 100];
        let mut b: Vec<u32> = (0..100).collect();
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .for_each(|(x, y)| *x = *y + 1);
        assert!(a.iter().enumerate().all(|(i, &x)| x as usize == i + 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1003).collect();
        let out: Vec<usize> = items.par_iter().map(|&i| i * i).collect();
        assert_eq!(out.len(), 1003);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn chunks_cover_the_slice() {
        let mut v = vec![1f32; 1000];
        v.par_chunks_mut(16)
            .enumerate()
            .for_each(|(blk, chunk)| {
                for x in chunk {
                    *x = blk as f32;
                }
            });
        assert_eq!(v[0], 0.0);
        assert_eq!(v[999], (999 / 16) as f32);
    }

    #[test]
    #[should_panic]
    fn panics_propagate_to_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        items.par_iter().for_each(|&i| {
            assert!(i < 63, "boom");
        });
    }

    #[test]
    fn pooled_panic_keeps_its_payload() {
        // The panicking item sits in the last chunk, which is always
        // dispatched to the pool (the caller runs the first chunk
        // inline), so this exercises the cross-thread payload hand-off.
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            items.par_iter().for_each(|&i| {
                if i == 63 {
                    panic!("device 63 exploded");
                }
            });
        });
        let payload = result.expect_err("the pooled panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is a panic message");
        assert!(
            msg.contains("device 63 exploded"),
            "payload lost its message: {msg:?}"
        );
    }
}
