//! Offline drop-in stand-in for the `serde_json` crate.
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — over the `serde` shim's [`Value`] tree. The emitted
//! JSON follows serde_json's conventions for this workspace's types:
//! externally-tagged enums, `null` for `None`, shortest-round-trip
//! float formatting (so `f32` values survive a round trip bit-exactly)
//! and `null` for non-finite floats.

use serde::{Deserialize, Serialize, Value};

/// Parse or serialisation error: a message with position context.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Never fails for this workspace's types; the `Result` mirrors the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialises a value from a JSON string.
///
/// # Errors
/// Returns an error on malformed JSON, trailing input, or a structural
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json's lossy behaviour for non-finite numbers.
        out.push_str("null");
        return;
    }
    // Rust's shortest-round-trip formatting; add a decimal point when
    // absent so the value reads back as a float, matching serde_json.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = char::from_u32(cp).ok_or_else(|| {
                                Error::new("unsupported \\u escape (surrogates not handled)")
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f32>("7").unwrap(), 7.0);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn f32_values_survive_bit_exactly() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xc2c8_0000] {
            let x = f32::from_bits(bits);
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), bits, "{x} → {s} → {back}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<usize>> = vec![Some(1), None, Some(2)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,2]");
        assert_eq!(from_str::<Vec<Option<usize>>>(&s).unwrap(), v);
        let nested: Vec<Vec<usize>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<usize>>>(&s).unwrap(), nested);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = String::from("a \"b\"\n\\c\td");
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
