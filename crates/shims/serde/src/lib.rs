//! Offline drop-in stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the serialisation surface it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits (via an intermediate
//! [`Value`] tree rather than serde's visitor machinery) and, behind
//! the `derive` feature, `#[derive(Serialize, Deserialize)]` for
//! named-field structs, newtype structs and enums with unit or
//! named-field variants. The honoured field attributes are exactly
//! those the workspace uses: `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(skip_serializing_if =
//! "path")]` and the container attribute `#[serde(rename_all =
//! "lowercase")]`.
//!
//! Enum values use serde's externally-tagged representation, so the
//! JSON produced by the sibling `serde_json` shim matches what the
//! real crates would emit for this workspace's types.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate representation every type serialises through.
///
/// Integers are kept as `i128` so `u64` seeds round-trip exactly;
/// floats as `f64` (exact for every `f32`, the workspace's numeric
/// type).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing `Option`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer.
    Int(i128),
    /// Any floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Looks up `key` in map entries (first match wins, as in JSON).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialisation error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting structural mismatches as errors.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    // JSON writes 2.0 as "2.0" but integral values can
                    // still arrive as integers from hand-written JSON.
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Option<usize>> = vec![Some(3), None, Some(7)];
        let back = Vec::<Option<usize>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_integers_error() {
        let big = Value::Int(i128::from(u64::MAX));
        assert!(u32::from_value(&big).is_err());
        assert!(u64::from_value(&big).is_ok());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(Vec::<f32>::from_value(&Value::Str("x".into())).is_err());
    }
}
