//! Offline drop-in stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, numeric-range strategies, `prop::collection::vec`,
//! `prop_map`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking and no failure
//! persistence: cases are generated from a seed derived
//! deterministically from the test name and case index, so a failure
//! reproduces on every run at the reported case number.

use rand::rngs::StdRng;

pub use rand::Rng as __Rng;

/// Configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Uniformly permutes generated collections (mirrors the real
    /// crate's `Strategy::prop_shuffle`).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// A constant-value strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute in place.
pub trait Shuffleable {
    /// Applies a uniform random permutation.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        use rand::Rng;
        // Fisher–Yates; uniform given a uniform `gen_range`.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// The result of [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let mut value = self.inner.generate(rng);
        value.shuffle(rng);
        value
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` deterministic cases of property `name`.
///
/// # Panics
/// Panics with the case number and message when a case fails, so the
/// failure is reproducible by rerunning the test.
pub fn run_cases(
    cases: u32,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), String>,
) {
    use rand::SeedableRng;
    // FNV-1a over the test name decorrelates the per-test streams.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..cases {
        let seed = name_hash ^ (u64::from(i)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}: {msg}");
        }
    }
}

/// The `proptest!` macro: a config header plus `#[test]` functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(__config.cases, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
}

/// Skips the current case when `cond` is false (vacuous pass; the real
/// crate resamples instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_follow_the_size_spec(
            fixed in prop::collection::vec(0u64..5, 4),
            ranged in prop::collection::vec(0.0f64..1.0, 1..7),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..7).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_applies(v in prop::collection::vec(1usize..4, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn just_is_constant(v in Just(vec![1u8, 2, 3])) {
            prop_assert_eq!(v, vec![1u8, 2, 3]);
        }

        #[test]
        fn shuffle_permutes(v in Just((0u32..16).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u32..16).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_cases(8, "always_fails", |_| Err("boom".to_string()));
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::Rng;
        let mut first = Vec::new();
        crate::run_cases(4, "det", |rng| {
            first.push(rng.gen::<u64>());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(4, "det", |rng| {
            second.push(rng.gen::<u64>());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
