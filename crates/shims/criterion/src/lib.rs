//! Offline drop-in stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace uses —
//! [`Criterion::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_batched`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`] — with a simple
//! warm-up + median-of-samples measurement loop and plain-text
//! reporting (no HTML, plots or statistical regression analysis).
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every routine runs exactly once so
//! the test suite stays fast.

use std::time::{Duration, Instant};

/// An identity function the optimiser cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; the shim times each call
/// individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// A fresh batch for every iteration.
    PerIteration,
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the timed-phase duration target.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration target.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: BenchConfig {
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                warm_up_time: self.warm_up_time,
                test_mode: self.test_mode,
            },
            sample_ns: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: ok (test mode, one iteration)");
        } else {
            let med = median(&mut b.sample_ns);
            println!("{id:<50} time: {} /iter ({} samples)", fmt_ns(med), b.sample_ns.len());
        }
        self
    }
}

#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

/// Per-benchmark measurement state, mirroring `criterion::Bencher`.
pub struct Bencher {
    config: BenchConfig,
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` alone.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.config.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, estimating the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Split the measurement budget into sample_size samples.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.config.sample_size as f64 / est_ns).floor() as u64).max(1);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.sample_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on inputs built by `setup`, excluding the setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.config.test_mode {
            let input = setup();
            black_box(routine(input));
            return;
        }
        // Warm-up with the routine only (setup excluded from timing).
        let mut timed = Duration::ZERO;
        let mut warm_iters = 0u64;
        while timed < self.config.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let est_ns = (timed.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.config.sample_size as f64 / est_ns).floor() as u64).max(1);
        for _ in 0..self.config.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                sample += t.elapsed();
            }
            self.sample_ns
                .push(sample.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Median of `samples` (which it sorts in place); 0 when empty.
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 0 {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            test_mode: false,
        }
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = quick();
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = quick();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| {
                    runs += 1;
                    black_box(v.len())
                },
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 5);
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
