//! Offline drop-in stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — different
//! constants than upstream `StdRng` (ChaCha12), so absolute random
//! streams differ from the real crate, but every reproducibility
//! property the workspace relies on (same seed ⇒ same stream, distinct
//! seeds ⇒ decorrelated streams) holds.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform sampling over a caller-supplied range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift keeps the draw unbiased enough for
                // simulation workloads without a rejection loop.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }

            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// state-seeded with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing.
        /// Restoring it with [`StdRng::from_state`] resumes the stream
        /// exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_capture_and_restore_resume_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            a.gen::<u64>();
        }
        let snapshot = a.state();
        let expected: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let mut b = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0u64..=5);
            assert!(j <= 5);
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
