//! Offline drop-in stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the sibling `serde` shim's value-tree model, parsing the input token
//! stream by hand (no `syn`/`quote` in the offline environment).
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, one-field newtype structs, and enums whose
//! variants are unit or named-field. Supported attributes:
//! `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(skip_serializing_if = "path")]` on fields and
//! `#[serde(rename_all = "lowercase")]` on enums. Anything else is a
//! deliberate compile-time panic so new usage is noticed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Input model and parsing.
// ---------------------------------------------------------------------

enum DefaultKind {
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: Option<DefaultKind>,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for a unit variant, field list for a named-field variant.
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Newtype { name: String },
    Enum { name: String, lowercase: bool, variants: Vec<Variant> },
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_string(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found `{other}`"),
    }
}

/// Strips the surrounding quotes of a string-literal token.
fn literal_string(t: &TokenTree) -> String {
    let raw = match t {
        TokenTree::Literal(l) => l.to_string(),
        other => panic!("serde shim derive: expected string literal, found `{other}`"),
    };
    let stripped = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde shim derive: expected plain string literal, found {raw}"));
    stripped.to_string()
}

/// The `key` / `key = "value"` pairs of a `#[serde(...)]` attribute, or
/// an empty list for any other attribute (doc comments etc.).
fn serde_attr_pairs(bracket: &TokenStream) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = bracket.clone().into_iter().collect();
    if toks.len() != 2 || !is_ident(&toks[0], "serde") {
        return Vec::new();
    }
    let TokenTree::Group(inner) = &toks[1] else {
        return Vec::new();
    };
    let items: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let key = ident_string(&items[i]);
        i += 1;
        let mut val = None;
        if i < items.len() && is_punct(&items[i], '=') {
            val = Some(literal_string(&items[i + 1]));
            i += 2;
        }
        pairs.push((key, val));
        if i < items.len() && is_punct(&items[i], ',') {
            i += 1;
        }
    }
    pairs
}

/// Consumes leading attributes, returning their serde pairs.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut pairs = Vec::new();
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        if let TokenTree::Group(g) = &toks[*i + 1] {
            pairs.extend(serde_attr_pairs(&g.stream()));
        }
        *i += 2;
    }
    pairs
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes a type, honouring `<...>` nesting, up to a top-level comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = None;
        let mut skip_if = None;
        for (key, val) in take_attrs(&toks, &mut i) {
            match (key.as_str(), val) {
                ("default", None) => default = Some(DefaultKind::Std),
                ("default", Some(p)) => default = Some(DefaultKind::Path(p)),
                ("skip_serializing_if", Some(p)) => skip_if = Some(p),
                (other, _) => {
                    panic!("serde shim derive: unsupported field attribute `{other}`")
                }
            }
        }
        skip_visibility(&toks, &mut i);
        let name = ident_string(&toks[i]);
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field { name, default, skip_if });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        let name = ident_string(&toks[i]);
        i += 1;
        let mut fields = None;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                match g.delimiter() {
                    Delimiter::Brace => {
                        fields = Some(parse_named_fields(g.stream()));
                        i += 1;
                    }
                    other => panic!(
                        "serde shim derive: unsupported {other:?}-delimited data on variant `{name}`"
                    ),
                }
            }
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = take_attrs(&toks, &mut i);
    let mut lowercase = false;
    for (key, val) in container_attrs {
        match (key.as_str(), val.as_deref()) {
            ("rename_all", Some("lowercase")) => lowercase = true,
            (other, v) => panic!(
                "serde shim derive: unsupported container attribute `{other}` = {v:?}"
            ),
        }
    }
    skip_visibility(&toks, &mut i);
    let kind = ident_string(&toks[i]);
    i += 1;
    let name = ident_string(&toks[i]);
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let Some(TokenTree::Group(body)) = toks.get(i) else {
        panic!("serde shim derive: expected a body for `{name}`");
    };
    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Item::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        ("struct", Delimiter::Parenthesis) => {
            let inner: Vec<TokenTree> = body.stream().into_iter().collect();
            let commas = inner
                .iter()
                .filter(|t| is_punct(t, ','))
                .count();
            assert!(
                commas == 0 || (commas == 1 && is_punct(inner.last().expect("non-empty"), ',')),
                "serde shim derive: only one-field tuple structs are supported, `{name}` has more"
            );
            Item::Newtype { name }
        }
        ("enum", Delimiter::Brace) => Item::Enum {
            name,
            lowercase,
            variants: parse_variants(body.stream()),
        },
        (k, d) => panic!("serde shim derive: unsupported item `{k}` with {d:?} body"),
    }
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

fn variant_tag(v: &Variant, lowercase: bool) -> String {
    if lowercase {
        v.name.to_lowercase()
    } else {
        v.name.clone()
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = "#[automatically_derived]\n#[allow(clippy::all)]\n";
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::from(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                let n = &f.name;
                let push = format!(
                    "fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));"
                );
                match &f.skip_if {
                    Some(path) => body.push_str(&format!(
                        "if !{path}(&self.{n}) {{ {push} }}\n"
                    )),
                    None => {
                        body.push_str(&push);
                        body.push('\n');
                    }
                }
            }
            body.push_str("serde::Value::Map(fields)");
            format!(
                "{header}impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Newtype { name } => format!(
            "{header}impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n}}"
        ),
        Item::Enum { name, lowercase, variants } => {
            let mut arms = String::new();
            for v in variants {
                let tag = variant_tag(v, *lowercase);
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(\"{tag}\".to_string()),\n",
                        v = v.name
                    )),
                    Some(fs) => {
                        let binds: Vec<&str> =
                            fs.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Map(vec![(\"{tag}\".to_string(), serde::Value::Map(vec![{pushes}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{header}impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

/// The expression rebuilding one field from map entries `m`.
fn field_expr(owner: &str, f: &Field) -> String {
    let n = &f.name;
    let fallback = match &f.default {
        Some(DefaultKind::Std) => "Default::default()".to_string(),
        Some(DefaultKind::Path(p)) => format!("{p}()"),
        None => format!(
            "return Err(serde::Error::custom(\"{owner}: missing field `{n}`\"))"
        ),
    };
    format!(
        "{n}: match serde::map_get(m, \"{n}\") {{\n\
         Some(fv) => serde::Deserialize::from_value(fv)?,\n\
         None => {fallback},\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = "#[automatically_derived]\n#[allow(clippy::all)]\n";
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "{header}impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let m = v.as_map().ok_or_else(|| serde::Error::custom(\"{name}: expected map\"))?;\n\
                 Ok({name} {{\n{inits}\n}})\n}}\n}}",
                inits = inits.join(",\n")
            )
        }
        Item::Newtype { name } => format!(
            "{header}impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
             Ok({name}(serde::Deserialize::from_value(v)?))\n}}\n}}"
        ),
        Item::Enum { name, lowercase, variants } => {
            let units: Vec<&Variant> =
                variants.iter().filter(|v| v.fields.is_none()).collect();
            let datas: Vec<&Variant> =
                variants.iter().filter(|v| v.fields.is_some()).collect();

            let str_arm = {
                let mut arms = String::new();
                for v in &units {
                    arms.push_str(&format!(
                        "\"{tag}\" => Ok({name}::{v}),\n",
                        tag = variant_tag(v, *lowercase),
                        v = v.name
                    ));
                }
                format!(
                    "serde::Value::Str(s) => match s.as_str() {{\n{arms}\
                     other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n"
                )
            };

            let map_arm = if datas.is_empty() {
                String::new()
            } else {
                let mut arms = String::new();
                for v in &datas {
                    let fs = v.fields.as_ref().expect("data variant has fields");
                    let owner = format!("{name}::{v}", v = v.name);
                    let inits: Vec<String> =
                        fs.iter().map(|f| field_expr(&owner, f)).collect();
                    arms.push_str(&format!(
                        "\"{tag}\" => {{\n\
                         let m = inner.as_map().ok_or_else(|| serde::Error::custom(\"{owner}: expected map\"))?;\n\
                         Ok({owner} {{\n{inits}\n}})\n}}\n",
                        tag = variant_tag(v, *lowercase),
                        inits = inits.join(",\n")
                    ));
                }
                format!(
                    "serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n{arms}\
                     other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n"
                )
            };

            format!(
                "{header}impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v {{\n{str_arm}{map_arm}\
                 _ => Err(serde::Error::custom(\"{name}: expected variant tag\")),\n\
                 }}\n}}\n}}"
            )
        }
    }
}
