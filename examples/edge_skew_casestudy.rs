//! The paper's Figure 1 motivation case study: with Non-IID data across
//! two edges, the global model improves while edge 1's accuracy on its
//! *minor* classes collapses.
//!
//! ```sh
//! cargo run --release --example edge_skew_casestudy
//! ```

use middle::data::partition::edge_skew_counts;
use middle::data::synthetic::SyntheticSource;
use middle::prelude::*;

fn main() {
    // 70/30 skew across 2 edges, as in §2 Question 1.
    let [edge0_counts, edge1_counts] = edge_skew_counts(10, 100, 0.7);
    let src = SyntheticSource::new(Task::Mnist, 11);
    println!("edge 0 class counts: {edge0_counts:?}");
    println!("edge 1 class counts: {edge1_counts:?}");
    let _sanity = src.generate_counts(&edge0_counts, 5);

    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::hierfavg());
    cfg.num_edges = 2;
    cfg.num_devices = 20;
    cfg.devices_per_edge = 5;
    cfg.samples_per_device = 30;
    cfg.scheme = Scheme::MajorClass { major_frac: 0.8 };
    cfg.steps = 40;
    cfg.cloud_interval = 10;
    cfg.eval_interval = 4;
    cfg.eval_edges = true;
    cfg.eval_per_class = true;
    cfg.test_samples = 300;
    cfg.mobility = MobilitySource::Stationary; // Figure 1 has no movement

    println!("\ntraining hierarchical FedAvg with stationary devices ...\n");
    let record = SimulationBuilder::new(cfg)
        .build()
        .expect("valid config")
        .run();

    println!("step | global | edge0 | edge0 major(0-4) | edge0 minor(5-9)");
    for p in &record.points {
        let major: Vec<f32> = p.edge0_per_class[..5].iter().flatten().copied().collect();
        let minor: Vec<f32> = p.edge0_per_class[5..].iter().flatten().copied().collect();
        let mean = |v: &[f32]| {
            if v.is_empty() {
                f32::NAN
            } else {
                v.iter().sum::<f32>() / v.len() as f32
            }
        };
        println!(
            "{:>4} | {:.3}  | {:.3} | {:.3}            | {:.3}",
            p.step,
            p.global_accuracy,
            p.edge_accuracy[0],
            mean(&major),
            mean(&minor)
        );
    }
    println!("\nExpected shape (paper Fig. 1): global rises; the edge's major classes");
    println!("track it while minor-class accuracy lags or decays between cloud syncs.");
}
