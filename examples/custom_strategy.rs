//! Building a custom algorithm from the selection / on-device policy
//! components — e.g. the ablation "MIDDLE selection + fixed α blending"
//! — and racing it against stock MIDDLE.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```

use middle::core::{OnDevicePolicy, SelectionPolicy};
use middle::prelude::*;

fn main() {
    let candidates = vec![
        Algorithm::middle(),
        Algorithm::custom(
            "MIDDLE-α0.5",
            SelectionPolicy::LeastSimilarUpdate,
            OnDevicePolicy::FixedAlpha { alpha: 0.5 },
        ),
        Algorithm::custom(
            "MIDDLE-unclipped",
            SelectionPolicy::LeastSimilarUpdate,
            OnDevicePolicy::UnclippedSimilarity,
        ),
        Algorithm::custom(
            "MostSimilar-sel",
            SelectionPolicy::MostSimilarUpdate,
            OnDevicePolicy::SimilarityWeighted,
        ),
    ];

    println!(
        "racing {} algorithm variants on synthetic MNIST ...\n",
        candidates.len()
    );
    let mut results = Vec::new();
    for algorithm in candidates {
        let mut cfg = SimConfig::paper_default(Task::Mnist, algorithm);
        cfg.num_edges = 4;
        cfg.num_devices = 24;
        cfg.devices_per_edge = 3;
        cfg.samples_per_device = 30;
        cfg.steps = 30;
        cfg.test_samples = 200;
        let record = SimulationBuilder::new(cfg)
            .build()
            .expect("valid config")
            .run();
        println!(
            "  {:<18} final {:.3}  best {:.3}",
            record.algorithm,
            record.final_accuracy(),
            record.best_accuracy()
        );
        results.push(record);
    }

    println!("\nPer-variant accuracy curves:");
    print!("step ");
    for r in &results {
        print!("| {:<16}", r.algorithm);
    }
    println!();
    for i in 0..results[0].points.len() {
        print!("{:>4} ", results[0].points[i].step);
        for r in &results {
            print!("| {:<16.3}", r.points[i].global_accuracy);
        }
        println!();
    }
}
