//! Failure injection on the fault plane: stragglers against a per-step
//! deadline, sticky dropout bursts, and lossy uploads with bounded
//! retry — what each costs in accuracy and communication.
//!
//! Late updates are not discarded: a device that misses the deadline
//! has its update merged *next* step as a stale Eq. 9 similarity-
//! weighted blend, so the `stale` column below is recovered work, not
//! lost work.
//!
//! ```sh
//! cargo run --release --example straggler_injection
//! ```

use middle::core::comm::{WAN_SECS_PER_TRANSFER, WIRELESS_SECS_PER_TRANSFER};
use middle::prelude::*;

fn base_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
    cfg.num_edges = 4;
    cfg.num_devices = 24;
    cfg.devices_per_edge = 3;
    cfg.samples_per_device = 30;
    cfg.steps = 30;
    cfg.test_samples = 200;
    cfg
}

fn main() {
    println!("MIDDLE under injected faults (synthetic MNIST, 4 edges, 24 devices)\n");

    let off = FaultConfig::default();
    let scenarios: [(&str, FaultConfig); 5] = [
        ("clean", off),
        (
            "iid dropout 30%",
            FaultConfig {
                dropout: DropoutModel::Iid { p: 0.3 },
                ..off
            },
        ),
        (
            "bursty dropout",
            FaultConfig {
                dropout: DropoutModel::Markov {
                    p_fail: 0.1,
                    p_recover: 0.25,
                },
                ..off
            },
        ),
        (
            "stragglers",
            FaultConfig {
                straggler_delay: DelayModel::Exponential { mean_s: 0.7 },
                deadline_s: 1.0,
                ..off
            },
        ),
        (
            "lossy uploads",
            FaultConfig {
                upload_loss: 0.3,
                upload_retries: 2,
                ..off
            },
        ),
    ];

    println!(
        "{:>16} {:>8} {:>9} {:>6} {:>6} {:>6} {:>8} {:>10}",
        "scenario", "final", "uploads", "retx", "lost", "stale", "active", "comm s"
    );
    for (name, faults) in scenarios {
        let mut cfg = base_config();
        cfg.faults = faults;
        let record = SimulationBuilder::new(cfg)
            .build()
            .expect("valid config")
            .run();
        println!(
            "{:>16} {:>8.3} {:>9} {:>6} {:>6} {:>6} {:>8} {:>10.1}",
            name,
            record.final_accuracy(),
            record.comm.device_to_edge,
            record.comm.upload_retransmissions,
            record.comm.lost_uploads,
            record.comm.stale_uploads,
            record.active_steps,
            record.comm_wall_clock(WIRELESS_SECS_PER_TRANSFER, WAN_SECS_PER_TRANSFER),
        );
    }

    println!("\nDropout shrinks each step's cohort — i.i.d. dropout thins every");
    println!("round a little, while bursty (Markov) dropout silences the same");
    println!("devices for whole stretches. Stragglers that miss the deadline");
    println!("re-enter as stale Eq. 9 blends next step, and lossy links pay for");
    println!("retransmissions (`retx`) rather than losing updates — only uploads");
    println!("that exhaust their retry budget are dropped (`lost`).");
}
