//! Failure injection: how device unavailability (stragglers/dropouts)
//! affects convergence, and what it costs in communication.
//!
//! ```sh
//! cargo run --release --example straggler_injection
//! ```

use middle::prelude::*;

fn main() {
    println!("MIDDLE under device dropout (synthetic MNIST, 4 edges, 24 devices)\n");
    println!(
        "{:>13} {:>10} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "availability", "final", "wireless tx", "WAN tx", "syncs", "active", "comm s"
    );
    for availability in [1.0, 0.7, 0.4, 0.1] {
        let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
        cfg.num_edges = 4;
        cfg.num_devices = 24;
        cfg.devices_per_edge = 3;
        cfg.samples_per_device = 30;
        cfg.steps = 30;
        cfg.test_samples = 200;
        cfg.availability = availability;
        let record = Simulation::new(cfg).run();
        println!(
            "{:>13.1} {:>10.3} {:>12} {:>12} {:>8} {:>8} {:>10.1}",
            availability,
            record.final_accuracy(),
            record.comm.wireless_total(),
            record.comm.wan_total(),
            record.syncs,
            record.active_steps,
            // 1 s per wireless round, 10 s per WAN round: only steps in
            // which someone participated cost a wireless round.
            record.comm_wall_clock(1.0, 10.0),
        );
    }
    println!("\nLower availability shrinks each step's training cohort (and its");
    println!("communication), slowing but not breaking convergence — selection");
    println!("simply works with whoever is reachable, as in the paper's setting.");
    println!("At extreme dropout some steps go fully inactive; the simulated");
    println!("communication clock charges wireless rounds only for active steps.");
}
