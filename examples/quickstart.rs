//! Quickstart: run MIDDLE and classical hierarchical FedAvg side by side
//! on the synthetic MNIST task and compare convergence.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use middle::prelude::*;

fn main() {
    println!("MIDDLE quickstart — mobility-driven device-edge-cloud FL\n");

    // A small-but-real setup: 4 edges, 24 mobile devices with heavily
    // skewed local data (80% one class each), mobility P = 0.5.
    let mut configs = Vec::new();
    for algorithm in [Algorithm::middle(), Algorithm::hierfavg()] {
        let mut cfg = SimConfig::paper_default(Task::Mnist, algorithm);
        cfg.num_edges = 4;
        cfg.num_devices = 24;
        cfg.devices_per_edge = 3;
        cfg.samples_per_device = 30;
        cfg.steps = 40;
        cfg.cloud_interval = 10;
        cfg.eval_interval = 4;
        cfg.test_samples = 200;
        configs.push(cfg);
    }

    let mut records: Vec<RunRecord> = Vec::new();
    for cfg in configs {
        let name = cfg.algorithm.name.clone();
        println!(
            "running {name} — {} edges, {} devices, {} steps ...",
            cfg.num_edges, cfg.num_devices, cfg.steps
        );
        let record = SimulationBuilder::new(cfg)
            .build()
            .expect("valid config")
            .run();
        println!(
            "  final accuracy {:.3}, empirical mobility {:.2}, {:.1}s\n",
            record.final_accuracy(),
            record.empirical_mobility,
            record.wall_seconds
        );
        records.push(record);
    }

    println!("accuracy curves (step: MIDDLE vs HierFAVG):");
    for (a, b) in records[0].curve().iter().zip(records[1].curve()) {
        println!("  step {:>3}: {:.3}  vs  {:.3}", a.0, a.1, b.1);
    }

    let target = Task::Mnist.target_accuracy();
    match (
        records[0].time_to_accuracy(target),
        records[1].time_to_accuracy(target),
    ) {
        (Some(tm), Some(th)) => println!(
            "\ntime to {target:.0}%: MIDDLE {tm} steps, HierFAVG {th} steps ({:.2}x speedup)",
            th as f64 / tm as f64
        ),
        (Some(tm), None) => {
            println!("\nMIDDLE reached {target:.2} at step {tm}; HierFAVG never reached it")
        }
        _ => println!("\ntarget {target:.2} not reached in this short demo run"),
    }
}
