//! Mobility sweep: how the global mobility probability `P` affects final
//! accuracy (a small-scale version of the paper's Figure 7) plus the
//! Theorem 1 / Remark 1 prediction on the quadratic test-bed.
//!
//! ```sh
//! cargo run --release --example mobility_sweep
//! ```

use middle::core::quadratic_sim::{
    simulate_quadratic_hfl, two_cluster_problem, QuadraticHflConfig,
};
use middle::core::theory::BoundParams;
use middle::prelude::*;

fn main() {
    println!("Part 1 — CNN federated training vs mobility P (synthetic MNIST)\n");
    for p in [0.1, 0.3, 0.5] {
        let mut cfg = SimConfig::paper_default(Task::Mnist, Algorithm::middle());
        cfg.num_edges = 4;
        cfg.num_devices = 24;
        cfg.devices_per_edge = 3;
        cfg.samples_per_device = 30;
        cfg.steps = 30;
        cfg.test_samples = 200;
        cfg.mobility = MobilitySource::MarkovHop { p };
        let record = SimulationBuilder::new(cfg)
            .build()
            .expect("valid config")
            .run();
        println!(
            "  P = {p:.1}: final accuracy {:.3} (tail {:.3}), empirical mobility {:.2}",
            record.final_accuracy(),
            record.tail_accuracy(3),
            record.empirical_mobility
        );
    }

    println!("\nPart 2 — Theorem 1 on the strongly-convex quadratic test-bed\n");
    let problem = two_cluster_problem(20, 2, 3.0);
    let bound = BoundParams {
        beta: problem.beta(),
        mu: problem.mu(),
        b: 0.01,
        g2: 25.0,
        local_steps: 5,
        alpha: 0.5,
        p: 0.5,
        initial_gap: 10.0,
    };
    println!("  analytic mobility term 8βI²G²/(μ²γ²α(1−α)P):");
    for p in [0.1f32, 0.3, 0.5, 0.9] {
        let mut b = bound;
        b.p = p;
        println!(
            "    P = {p:.1}: residual {:.4}, dBound/dP = {:.4}",
            b.mobility_term(),
            b.mobility_derivative()
        );
    }

    println!("\n  measured final optimality gap (mean of 5 seeds):");
    for p in [0.05, 0.3, 0.8] {
        let mean: f32 = (0..5)
            .map(|s| {
                let cfg = QuadraticHflConfig {
                    p,
                    steps: 150,
                    cloud_interval: 30,
                    seed: 100 + s,
                    ..Default::default()
                };
                simulate_quadratic_hfl(&problem, &cfg).final_gap
            })
            .sum::<f32>()
            / 5.0;
        println!("    P = {p:.2}: gap {mean:.4}");
    }
    println!("\n  (both decrease in P — Remark 1 holds in simulation)");
}
