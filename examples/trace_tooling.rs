//! Mobility-trace tooling: generate traces with each model, inspect
//! their statistics, export/import the ONE-simulator-style report
//! format, and feed a custom trace into a simulation.
//!
//! ```sh
//! cargo run --release --example trace_tooling
//! ```

use middle::mobility::stats::{
    at_home_fraction, mean_sojourn, occupancy_imbalance, transition_matrix,
};
use middle::mobility::{
    generate_geometric, generate_markov_hop, generate_markov_hop_homed, MobilityKind, ServiceArea,
    Trace,
};
use middle::prelude::*;

fn describe(name: &str, t: &Trace, homes: Option<&[usize]>) {
    println!("{name}:");
    println!(
        "  devices {}  edges {}  steps {}",
        t.devices(),
        t.num_edges(),
        t.steps()
    );
    println!("  empirical mobility  {:.3}", t.empirical_mobility());
    println!("  mean sojourn        {:.2} steps", mean_sojourn(t));
    println!("  occupancy imbalance {:.3}", occupancy_imbalance(t));
    if let Some(h) = homes {
        println!("  at-home fraction    {:.3}", at_home_fraction(t, h));
    }
    let m = transition_matrix(t);
    println!("  stay probability (diagonal): {:.3}", m[0][0]);
}

fn main() {
    let homes: Vec<usize> = (0..60).map(|m| m % 4).collect();

    let uniform = generate_markov_hop(4, 60, 200, 0.5, 11);
    describe("uniform Markov hop (P = 0.5)", &uniform, Some(&homes));

    let homed = generate_markov_hop_homed(4, &homes, 200, 0.5, 0.6, 11);
    describe(
        "\nhome-biased Markov hop (P = 0.5, bias 0.6)",
        &homed,
        Some(&homes),
    );

    let area = ServiceArea::grid(1000.0, 1000.0, 4);
    let mut model = MobilityKind::RandomWaypoint {
        min_speed: 30.0,
        max_speed: 120.0,
    }
    .build();
    let geo = generate_geometric(&area, model.as_mut(), 60, 200, 11);
    describe("\nrandom waypoint over a 1 km grid", &geo, None);

    // Round-trip through the ONE-style report format.
    let report = homed.to_one_report();
    let parsed = Trace::from_one_report(&report, 4).expect("roundtrip");
    assert_eq!(parsed, homed);
    println!(
        "\nONE-report round trip OK ({} lines, {} bytes)",
        report.lines().count(),
        report.len()
    );

    // Drive a short simulation with the imported trace.
    let mut cfg = SimConfig::tiny(Task::Mnist, Algorithm::middle());
    cfg.num_devices = 60;
    cfg.num_edges = 4;
    cfg.steps = 10;
    let record = SimulationBuilder::new(cfg)
        .with_trace(parsed)
        .build()
        .expect("trace matches the config")
        .run();
    println!(
        "simulation on the imported trace: final accuracy {:.3}",
        record.final_accuracy()
    );
}
