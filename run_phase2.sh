#!/bin/sh
set -e
mkdir -p results/logs
for bin in fig1_motivation fig2_ondevice_case theorem1_bound ablation_report; do
  echo "== $bin =="
  cargo run -p middle-bench --release --bin "$bin" 2>&1 | tee "results/logs/$bin.log"
done
for bin in fig7_mobility_sweep fig8_tc_sweep; do
  echo "== $bin =="
  MIDDLE_SCALE=0.5 cargo run -p middle-bench --release --bin "$bin" 2>&1 | tee "results/logs/$bin.log"
done
