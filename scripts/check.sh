#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
#
#   scripts/check.sh           # everything
#   scripts/check.sh --fast    # skip the release build and perf gates
#   scripts/check.sh --ci      # everything + example builds + doc lints
#
# Run from anywhere; the script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CI=0
case "${1:-}" in
--fast) FAST=1 ;;
--ci) CI=1 ;;
esac

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$FAST" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

if [[ "$CI" -eq 1 ]]; then
    echo "==> cargo build --release --examples"
    cargo build --release --examples
fi

# --workspace matters: a bare `cargo test` only runs the root facade
# package, silently skipping every member crate's gate suite.
echo "==> cargo test --workspace -q"
cargo test --workspace -q

if [[ "$CI" -eq 1 ]]; then
    echo "==> cargo doc --workspace --no-deps (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
fi

if [[ "$FAST" -eq 0 ]]; then
    echo "==> telemetry overhead gate (disabled recorder must stay a no-op)"
    cargo run -q -p middle-bench --release --bin telemetry_overhead
fi

if [[ "$CI" -eq 1 ]]; then
    echo "==> sweep engine smoke run (4 scenarios, writes BENCH_sweep.json)"
    cargo run -q -p middle-bench --release --bin sweep -- --smoke

    echo "==> compression smoke run (lossless identity + 4x uplink gate, writes BENCH_compress.json)"
    cargo run -q -p middle-bench --release --bin compress_sweep -- --smoke

    echo "==> train-kernel smoke run (speedup regression gate, writes BENCH_train.json)"
    cargo run -q -p middle-bench --release --bin train_kernels -- --smoke

    echo "==> population-scale smoke run (dense/lazy pair, writes BENCH_scale_smoke.json)"
    cargo run -q -p middle-bench --release --bin scale_sweep -- --smoke
fi

echo "All checks passed."
