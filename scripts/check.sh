#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
#
#   scripts/check.sh           # everything
#   scripts/check.sh --fast    # skip the release build and perf gates
#   scripts/check.sh --ci      # everything + example builds, doc lints,
#                              # bench smoke runs, fleet smoke, bench
#                              # regression gate
#
# Flags combine (e.g. `--fast --ci` runs the CI extras without the
# release build); unknown flags are rejected. Run from anywhere; the
# script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
    echo "usage: scripts/check.sh [--fast] [--ci]" >&2
    echo "  --fast  skip the release build and perf gates" >&2
    echo "  --ci    add example builds, doc lints, bench smoke runs," >&2
    echo "          the fleet smoke and the bench regression gate" >&2
}

FAST=0
CI=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    --ci) CI=1 ;;
    -h | --help)
        usage
        exit 0
        ;;
    *)
        echo "check.sh: unknown flag '$arg'" >&2
        usage
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$FAST" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

if [[ "$CI" -eq 1 ]]; then
    echo "==> cargo build --release --examples"
    cargo build --release --examples
fi

# --workspace matters: a bare `cargo test` only runs the root facade
# package, silently skipping every member crate's gate suite.
echo "==> cargo test --workspace -q"
cargo test --workspace -q

if [[ "$CI" -eq 1 ]]; then
    echo "==> cargo doc --workspace --no-deps (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
fi

if [[ "$FAST" -eq 0 ]]; then
    echo "==> telemetry overhead gate (disabled recorder must stay a no-op)"
    cargo run -q -p middle-bench --release --bin telemetry_overhead
fi

if [[ "$CI" -eq 1 ]]; then
    echo "==> sweep engine smoke run (4 scenarios, writes BENCH_sweep.json)"
    cargo run -q -p middle-bench --release --bin sweep -- --smoke

    echo "==> compression smoke run (lossless identity + 4x uplink gate, writes BENCH_compress.json)"
    cargo run -q -p middle-bench --release --bin compress_sweep -- --smoke

    echo "==> train-kernel smoke run (speedup regression gate, writes BENCH_train.json)"
    cargo run -q -p middle-bench --release --bin train_kernels -- --smoke

    echo "==> population-scale smoke run (dense/lazy pair, writes BENCH_scale_smoke.json)"
    cargo run -q -p middle-bench --release --bin scale_sweep -- --smoke

    echo "==> algorithm-zoo smoke run (zoo x {clean,hostile}, writes BENCH_algos.json)"
    cargo run -q -p middle-bench --release --bin algos_sweep -- --smoke

    # Unlike the other bench baselines, the committed BENCH_async.json
    # is a *full* run (the dominance gate needs the real horizon), so
    # the smoke run writes to target/ instead of overwriting it.
    echo "==> async-timeline smoke run (lockstep vs event-driven Pareto, writes target/BENCH_async_smoke.json)"
    cargo run -q -p middle-bench --release --bin async_sweep -- target/BENCH_async_smoke.json --smoke

    echo "==> fleet smoke (3 workers, SIGKILL one, bitwise merge vs serial)"
    scripts/fleet_smoke.sh

    echo "==> bench regression gate (fresh smoke runs vs committed baselines)"
    scripts/bench_compare.sh
fi

echo "All checks passed."
