#!/usr/bin/env bash
# Bench-regression gate: re-runs the --smoke bench bins and fails when
# a gated metric regresses beyond tolerance against the committed
# baselines (`git show HEAD:BENCH_*.json`, so a working tree whose
# BENCH files were just regenerated still compares against the real
# baseline).
#
# Gated metrics:
#   BENCH_sweep.json        .speedup                    higher is better
#   BENCH_train.json        .<kernel>.speedup           higher is better
#   BENCH_scale_smoke.json  .[cell].peak_rss_mb and
#                           .[cell].peak_resident       lower is better
#   BENCH_algos.json        every (algorithm, regime) cell present,
#                           .final_accuracy             higher is better
#   BENCH_async.json        every regime present; under the hostile
#                           straggler regime every async point must
#                           keep beating the lockstep wall-clock, and
#                           best async .final_accuracy  higher is better
#                           (accuracy gated only when baseline and
#                           fresh run share a horizon — the committed
#                           baseline is a full run, not --smoke)
#
# Tolerances (fractional, overridable for noisy runners):
#   MIDDLE_BENCH_TOL_SPEEDUP   default 0.50  (fresh >= base * (1 - tol))
#   MIDDLE_BENCH_TOL_MEM       default 0.40  (fresh <= base * (1 + tol))
#   MIDDLE_BENCH_TOL_ACC       default 0.50  (fresh >= base * (1 - tol))
#
#   scripts/bench_compare.sh
#
# Run from anywhere; the script cd's to the repo root. Fresh results
# land in a temp dir — the working tree's BENCH files are not touched.

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/middle_bench_compare.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "==> baselines from HEAD"
for f in BENCH_sweep.json BENCH_train.json BENCH_scale_smoke.json BENCH_algos.json BENCH_async.json; do
    # HEAD first; fall back to the staged copy so the gate works in the
    # commit that first introduces a baseline.
    if ! git show "HEAD:$f" >"$WORK/base_$f" 2>/dev/null \
        && ! git show ":$f" >"$WORK/base_$f" 2>/dev/null; then
        echo "bench_compare: $f is not committed at HEAD; nothing to gate against" >&2
        exit 1
    fi
done

echo "==> fresh smoke runs (sweep, train_kernels, scale_sweep, algos_sweep, async_sweep)"
cargo run -q -p middle-bench --release --bin sweep -- --smoke "$WORK/BENCH_sweep.json"
# train_kernels reads the committed numbers from its out path before
# overwriting it (its own internal smoke gate) — seed it with the
# baseline.
cp "$WORK/base_BENCH_train.json" "$WORK/BENCH_train.json"
cargo run -q -p middle-bench --release --bin train_kernels -- --smoke "$WORK/BENCH_train.json"
# scale_sweep writes BENCH_scale_smoke.json into its CWD.
(cd "$WORK" && cargo run -q -p middle-bench --release \
    --manifest-path "$ROOT/Cargo.toml" --bin scale_sweep -- --smoke)
cargo run -q -p middle-bench --release --bin algos_sweep -- --smoke "$WORK/BENCH_algos.json"
cargo run -q -p middle-bench --release --bin async_sweep -- "$WORK/BENCH_async.json" --smoke

echo "==> comparing gated metrics"
WORK="$WORK" python3 - <<'PY'
import json
import os
import sys

work = os.environ["WORK"]
tol_speedup = float(os.environ.get("MIDDLE_BENCH_TOL_SPEEDUP", "0.50"))
tol_mem = float(os.environ.get("MIDDLE_BENCH_TOL_MEM", "0.40"))
tol_acc = float(os.environ.get("MIDDLE_BENCH_TOL_ACC", "0.50"))
failures = []


def load(name, fresh=True):
    path = os.path.join(work, name if fresh else f"base_{name}")
    with open(path) as f:
        return json.load(f)


def gate_higher(label, base, fresh, tol):
    floor = base * (1.0 - tol)
    verdict = "ok" if fresh >= floor else "REGRESSED"
    print(f"  {label:<42} base {base:8.3f}  fresh {fresh:8.3f}  floor {floor:8.3f}  {verdict}")
    if fresh < floor:
        failures.append(label)


def gate_lower(label, base, fresh, tol):
    ceil = base * (1.0 + tol)
    verdict = "ok" if fresh <= ceil else "REGRESSED"
    print(f"  {label:<42} base {base:8.1f}  fresh {fresh:8.1f}  ceil {ceil:8.1f}  {verdict}")
    if fresh > ceil:
        failures.append(label)


sweep_base = load("BENCH_sweep.json", fresh=False)
sweep_fresh = load("BENCH_sweep.json")
gate_higher("sweep.speedup", sweep_base["speedup"], sweep_fresh["speedup"], tol_speedup)

train_base = load("BENCH_train.json", fresh=False)
train_fresh = load("BENCH_train.json")
for kernel, entry in train_base.items():
    if kernel not in train_fresh:
        failures.append(f"train.{kernel} (missing from fresh run)")
        continue
    gate_higher(f"train.{kernel}.speedup", entry["speedup"], train_fresh[kernel]["speedup"], tol_speedup)

scale_base = load("BENCH_scale_smoke.json", fresh=False)
scale_fresh = load("BENCH_scale_smoke.json")
key = lambda c: (c.get("devices"), c.get("edges"), c.get("mode"))
fresh_cells = {key(c): c for c in scale_fresh if "devices" in c}
for cell in scale_base:
    if "devices" not in cell:
        continue
    label = f"scale.{cell['devices']}x{cell['edges']}.{cell['mode']}"
    fresh = fresh_cells.get(key(cell))
    if fresh is None:
        failures.append(f"{label} (missing from fresh run)")
        continue
    gate_lower(f"{label}.peak_rss_mb", cell["peak_rss_mb"], fresh["peak_rss_mb"], tol_mem)
    gate_lower(f"{label}.peak_resident", cell["peak_resident"], fresh["peak_resident"], tol_mem)

algos_base = load("BENCH_algos.json", fresh=False)
algos_fresh = load("BENCH_algos.json")
akey = lambda c: (c["algorithm"], c["regime"])
afresh = {akey(c): c for c in algos_fresh["cells"]}
for cell in algos_base["cells"]:
    label = f"algos.{cell['algorithm']}.{cell['regime']}"
    fresh = afresh.get(akey(cell))
    if fresh is None:
        failures.append(f"{label} (missing from fresh run)")
        continue
    gate_higher(f"{label}.final_accuracy", cell["final_accuracy"], fresh["final_accuracy"], tol_acc)

async_base = load("BENCH_async.json", fresh=False)
async_fresh = load("BENCH_async.json")
fresh_regimes = {r["regime"]: r for r in async_fresh["regimes"]}
for regime in async_base["regimes"]:
    name = regime["regime"]
    fresh = fresh_regimes.get(name)
    if fresh is None:
        failures.append(f"async.{name} (missing from fresh run)")
        continue
    best = lambda r: max(p["final_accuracy"] for p in r["async"])
    if async_base.get("smoke") == async_fresh.get("smoke"):
        gate_higher(f"async.{name}.best_final_accuracy", best(regime), best(fresh), tol_acc)
    else:
        # The committed baseline is a full-horizon run; accuracies from
        # a smoke run are not comparable to it. The wall-domination
        # check below is fresh-vs-fresh and still gates.
        print(f"  async.{name}.best_final_accuracy          skipped (smoke vs full horizon)")
    if name == "hostile_stragglers":
        lock_wall = fresh["lockstep"]["wall_s"]
        slow = [p["label"] for p in fresh["async"] if p["wall_s"] >= lock_wall]
        verdict = "ok" if not slow else "REGRESSED"
        print(f"  {'async.hostile.wall_domination':<42} lock {lock_wall:8.1f}  {verdict}")
        if slow:
            failures.append(f"async.{name}.wall_domination ({', '.join(slow)})")

if failures:
    print(f"\nbench_compare: {len(failures)} gated metric(s) regressed beyond tolerance:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("\nbench_compare: all gated metrics within tolerance.")
PY
