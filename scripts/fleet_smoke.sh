#!/usr/bin/env bash
# Fleet-smoke gate: the multi-process acceptance check for the
# `middle-sweepd` lease protocol.
#
# Runs the smoke grid once single-process (the oracle), then with three
# worker processes sharing the lease ledger, SIGKILLs one worker
# mid-sweep, lets the survivors reclaim its expired lease, merges the
# worker streams through the coordinator, and asserts the merged
# deterministic report is byte-identical to the uninterrupted
# single-process run.
#
#   scripts/fleet_smoke.sh
#
# Run from anywhere; the script cd's to the repo root. Builds
# middle-sweepd (release) if the binary is missing.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/middle-sweepd
if [[ ! -x "$BIN" ]]; then
    echo "==> building middle-sweepd (release)"
    cargo build --release -p middle-sweepd
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/middle_fleet_smoke.XXXXXX")"
cleanup() {
    # Don't leave orphan workers behind on any exit path.
    [[ -n "${WORKER_PIDS:-}" ]] && kill -9 ${WORKER_PIDS} 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> gen-grid --smoke"
"$BIN" gen-grid --smoke >"$WORK/grid.json"

echo "==> serial oracle (single process, no fleet)"
"$BIN" serial --grid "$WORK/grid.json" --deterministic --out "$WORK/serial.json"

echo "==> 3 workers over the shared ledger"
mkdir -p "$WORK/fleet"
WORKER_PIDS=""
for i in 0 1 2; do
    "$BIN" worker --grid "$WORK/grid.json" --dir "$WORK/fleet" --id "w$i" \
        --lease-ms 2000 --max-wall-ms 300000 >/dev/null 2>&1 &
    WORKER_PIDS="$WORKER_PIDS $!"
done
read -r VICTIM _SURVIVORS <<<"${WORKER_PIDS# }"

# Wait until the fleet has made real progress (so the kill lands
# mid-sweep, not before the first lease), then SIGKILL one worker.
for _ in $(seq 1 600); do
    completed="$("$BIN" status --dir "$WORK/fleet" 2>/dev/null | head -n1 | cut -d/ -f1 || echo 0)"
    [[ "${completed:-0}" =~ ^[0-9]+$ ]] || completed=0
    if [[ "$completed" -ge 2 ]]; then
        break
    fi
    sleep 0.1
done
if [[ "$completed" -lt 2 ]]; then
    echo "fleet_smoke: fleet made no progress (completed=$completed)" >&2
    exit 1
fi
echo "==> SIGKILL worker w0 (pid $VICTIM) at $completed completed"
if ! kill -9 "$VICTIM" 2>/dev/null; then
    echo "fleet_smoke: worker exited before the kill — grid too small to land a mid-run SIGKILL" >&2
    exit 1
fi

echo "==> coordinator merge (reclaims the dead worker's lease)"
"$BIN" coordinator --grid "$WORK/grid.json" --dir "$WORK/fleet" \
    --lease-ms 2000 --max-wall-ms 300000 --deterministic --out "$WORK/fleet.json"

wait 2>/dev/null || true
WORKER_PIDS=""

echo "==> bitwise compare: fleet report vs serial oracle"
if ! cmp "$WORK/serial.json" "$WORK/fleet.json"; then
    echo "fleet_smoke: merged fleet report is NOT byte-identical to the serial run" >&2
    exit 1
fi
echo "fleet_smoke: merged report is byte-identical to the serial oracle."
